#include "matching/link_index.h"

#include <algorithm>
#include <mutex>
#include <numeric>

#include "common/failpoint.h"
#include "common/logging.h"

namespace queryer {

LinkIndex::LinkIndex(std::size_t num_entities)
    : parent_(num_entities),
      cluster_size_(num_entities, 1),
      next_in_cluster_(num_entities),
      resolved_(num_entities, false) {
  std::iota(parent_.begin(), parent_.end(), 0);
  std::iota(next_in_cluster_.begin(), next_in_cluster_.end(), 0);
}

EntityId LinkIndex::Find(EntityId e) {
  QUERYER_DCHECK(e < parent_.size());
  // Path halving: only rewires parents within the same set; exclusive
  // sections only, so concurrent readers never observe the rewiring.
  while (parent_[e] != e) {
    parent_[e] = parent_[parent_[e]];
    e = parent_[e];
  }
  return e;
}

EntityId LinkIndex::FindShared(EntityId e) const {
  QUERYER_DCHECK(e < parent_.size());
  // No path halving: pure reads. Union by size keeps the forest depth
  // logarithmic, so forgoing compression on reads costs little.
  while (parent_[e] != e) e = parent_[e];
  return e;
}

bool LinkIndex::AddLinkLocked(EntityId a, EntityId b) {
  EntityId ra = Find(a);
  EntityId rb = Find(b);
  if (ra == rb) return false;
  if (cluster_size_[ra] < cluster_size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  cluster_size_[ra] += cluster_size_[rb];
  // Splice the two circular lists.
  std::swap(next_in_cluster_[ra], next_in_cluster_[rb]);
  ++num_links_;
  return true;
}

void LinkIndex::WalAppendLinks(const std::vector<Link>& links) {
  if (wal_ == nullptr) return;
  const Status status = wal_->AppendLinks(links);
  if (!status.ok()) throw LinkIndexWalError(status.ToString());
}

void LinkIndex::WalAppendMarks(const std::vector<EntityId>& entities) {
  if (wal_ == nullptr) return;
  const Status status = wal_->AppendMarks(entities);
  if (!status.ok()) throw LinkIndexWalError(status.ToString());
}

bool LinkIndex::AddLink(EntityId a, EntityId b) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  WalAppendLinks({{a, b}});
  bool merged = AddLinkLocked(a, b);
  epoch_.fetch_add(1, std::memory_order_release);
  return merged;
}

std::size_t LinkIndex::PublishLinks(const std::vector<Link>& links) {
  // Before the exclusive section: an injected publish failure must leave
  // the index untouched (all-or-nothing), so the owner's abandonment hands
  // waiters pairs whose links genuinely were not applied.
  QUERYER_FAILPOINT_THROW("li.publish");
  if (links.empty()) return 0;
  std::unique_lock<std::shared_mutex> lock(mutex_);
  // Log before apply: a WAL failure throws out of here with the in-memory
  // index untouched, and the log never lags memory-visible links.
  WalAppendLinks(links);
  std::size_t merged = 0;
  for (const auto& [a, b] : links) {
    if (AddLinkLocked(a, b)) ++merged;
  }
  epoch_.fetch_add(1, std::memory_order_release);
  return merged;
}

void LinkIndex::MarkResolvedBatch(const std::vector<EntityId>& entities) {
  if (entities.empty()) return;
  std::unique_lock<std::shared_mutex> lock(mutex_);
  WalAppendMarks(entities);
  for (EntityId e : entities) MarkResolvedLocked(e);
  epoch_.fetch_add(1, std::memory_order_release);
}

void LinkIndex::MarkAllResolved() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (wal_ != nullptr) {
    const Status status = wal_->AppendMarkAll();
    if (!status.ok()) throw LinkIndexWalError(status.ToString());
  }
  for (EntityId e = 0; e < resolved_.size(); ++e) MarkResolvedLocked(e);
  epoch_.fetch_add(1, std::memory_order_release);
}

bool LinkIndex::AreLinked(EntityId a, EntityId b) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return FindShared(a) == FindShared(b);
}

EntityId LinkIndex::Representative(EntityId e) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return FindShared(e);
}

std::vector<EntityId> LinkIndex::ClusterLocked(EntityId e) const {
  std::vector<EntityId> members;
  EntityId current = e;
  do {
    members.push_back(current);
    current = next_in_cluster_[current];
  } while (current != e);
  std::sort(members.begin(), members.end());
  return members;
}

std::vector<EntityId> LinkIndex::Cluster(EntityId e) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return ClusterLocked(e);
}

std::vector<EntityId> LinkIndex::Duplicates(EntityId e) const {
  std::vector<EntityId> members = Cluster(e);
  members.erase(std::remove(members.begin(), members.end(), e), members.end());
  return members;
}

void LinkIndex::MarkResolvedLocked(EntityId e) {
  if (!resolved_[e]) {
    resolved_[e] = true;
    ++num_resolved_count_;
  }
}

void LinkIndex::MarkResolved(EntityId e) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  WalAppendMarks({e});
  MarkResolvedLocked(e);
  epoch_.fetch_add(1, std::memory_order_release);
}

bool LinkIndex::IsResolved(EntityId e) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return resolved_[e];
}

std::size_t LinkIndex::num_resolved() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return num_resolved_count_;
}

std::size_t LinkIndex::num_links() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return num_links_;
}

void LinkIndex::set_wal(LinkIndexWal* wal) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  wal_ = wal;
}

void LinkIndex::RestoreLinks(const std::vector<Link>& links) {
  if (links.empty()) return;
  std::unique_lock<std::shared_mutex> lock(mutex_);
  for (const auto& [a, b] : links) AddLinkLocked(a, b);
  epoch_.fetch_add(1, std::memory_order_release);
}

void LinkIndex::RestoreMarks(const std::vector<EntityId>& entities) {
  if (entities.empty()) return;
  std::unique_lock<std::shared_mutex> lock(mutex_);
  for (EntityId e : entities) MarkResolvedLocked(e);
  epoch_.fetch_add(1, std::memory_order_release);
}

void LinkIndex::RestoreMarkAll() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  for (EntityId e = 0; e < resolved_.size(); ++e) MarkResolvedLocked(e);
  epoch_.fetch_add(1, std::memory_order_release);
}

void LinkIndex::Reset() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (wal_ != nullptr) {
    const Status status = wal_->AppendReset();
    if (!status.ok()) throw LinkIndexWalError(status.ToString());
  }
  std::iota(parent_.begin(), parent_.end(), 0);
  std::fill(cluster_size_.begin(), cluster_size_.end(), 1);
  std::iota(next_in_cluster_.begin(), next_in_cluster_.end(), 0);
  std::fill(resolved_.begin(), resolved_.end(), false);
  num_resolved_count_ = 0;
  num_links_ = 0;
  epoch_.fetch_add(1, std::memory_order_release);
}

std::size_t LinkIndex::MemoryFootprint() const {
  return parent_.size() * (sizeof(EntityId) * 2 + sizeof(std::uint32_t)) +
         resolved_.size() / 8;
}

}  // namespace queryer
