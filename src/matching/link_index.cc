#include "matching/link_index.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace queryer {

LinkIndex::LinkIndex(std::size_t num_entities)
    : parent_(num_entities),
      cluster_size_(num_entities, 1),
      next_in_cluster_(num_entities),
      resolved_(num_entities, false) {
  std::iota(parent_.begin(), parent_.end(), 0);
  std::iota(next_in_cluster_.begin(), next_in_cluster_.end(), 0);
}

EntityId LinkIndex::Find(EntityId e) const {
  QUERYER_DCHECK(e < parent_.size());
  // Path halving: safe under const since it only rewires parents within the
  // same set; keeps Find amortized near-constant.
  while (parent_[e] != e) {
    parent_[e] = parent_[parent_[e]];
    e = parent_[e];
  }
  return e;
}

EntityId LinkIndex::FindShared(EntityId e) const {
  QUERYER_DCHECK(e < parent_.size());
  // No path halving: pure reads, safe under concurrent callers while no
  // writer is active.
  while (parent_[e] != e) e = parent_[e];
  return e;
}

bool LinkIndex::AddLink(EntityId a, EntityId b) {
  EntityId ra = Find(a);
  EntityId rb = Find(b);
  if (ra == rb) return false;
  if (cluster_size_[ra] < cluster_size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  cluster_size_[ra] += cluster_size_[rb];
  // Splice the two circular lists.
  std::swap(next_in_cluster_[ra], next_in_cluster_[rb]);
  ++num_links_;
  return true;
}

bool LinkIndex::AreLinked(EntityId a, EntityId b) const {
  return Find(a) == Find(b);
}

bool LinkIndex::AreLinkedShared(EntityId a, EntityId b) const {
  return FindShared(a) == FindShared(b);
}

EntityId LinkIndex::Representative(EntityId e) const { return Find(e); }

std::vector<EntityId> LinkIndex::Cluster(EntityId e) const {
  std::vector<EntityId> members;
  EntityId current = e;
  do {
    members.push_back(current);
    current = next_in_cluster_[current];
  } while (current != e);
  std::sort(members.begin(), members.end());
  return members;
}

std::vector<EntityId> LinkIndex::Duplicates(EntityId e) const {
  std::vector<EntityId> members = Cluster(e);
  members.erase(std::remove(members.begin(), members.end(), e), members.end());
  return members;
}

void LinkIndex::MarkResolved(EntityId e) {
  if (!resolved_[e]) {
    resolved_[e] = true;
    ++num_resolved_count_;
  }
}

void LinkIndex::Reset() {
  std::iota(parent_.begin(), parent_.end(), 0);
  std::fill(cluster_size_.begin(), cluster_size_.end(), 1);
  std::iota(next_in_cluster_.begin(), next_in_cluster_.end(), 0);
  std::fill(resolved_.begin(), resolved_.end(), false);
  num_resolved_count_ = 0;
  num_links_ = 0;
}

std::size_t LinkIndex::MemoryFootprint() const {
  return parent_.size() * (sizeof(EntityId) * 2 + sizeof(std::uint32_t)) +
         resolved_.size() / 8;
}

}  // namespace queryer
