// The parallel-execution substrate: a fixed-size worker pool with a shared
// task queue, plus the chunked ParallelFor primitive the engine's
// data-parallel phases (comparison execution, once-off index construction)
// are built on.
//
// Error handling follows the engine-wide Status idiom: ParallelFor bodies
// return Status, and any exception a body throws is captured and converted
// to an Internal Status, so worker threads never unwind across the pool
// boundary. With a null pool (or a single worker) every primitive degrades
// to the exact sequential execution order, which is how
// EngineOptions::num_threads == 1 preserves the seed's behavior bit for bit.

#ifndef QUERYER_PARALLEL_THREAD_POOL_H_
#define QUERYER_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/status.h"

namespace queryer {

class LatencyHistogram;  // obs/metrics.h — kept out of this header.

/// \brief Fixed-size worker pool with a FIFO task queue.
///
/// Workers are spawned in the constructor and joined in the destructor after
/// the queue drains. Submit is safe to call from any thread, including from
/// inside a running task (tasks must not block on tasks they enqueue,
/// though — the pool does no work stealing).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding tasks, then joins the workers.
  virtual ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Parallel width: chunked phases split their work by this. Virtual so a
  /// capped view can report its cap instead of the backing pool's width.
  virtual std::size_t num_threads() const {
    return num_threads_.load(std::memory_order_acquire);
  }

  /// Enqueues a task for execution on some worker. Tasks must not throw;
  /// use ParallelFor for exception-to-Status conversion.
  virtual void Submit(std::function<void()> task);

  /// Grows the pool to at least `num_threads` workers (pools never
  /// shrink). Safe to call while tasks are running.
  void EnsureWorkers(std::size_t num_threads);

  /// The process-wide pool, shared by every engine and query session.
  /// Lazily created on first call and grown (never shrunk) to the largest
  /// width any caller requested; `min_threads` == 0 requests hardware
  /// concurrency. Callers keep the returned shared_ptr for as long as they
  /// use the pool, so the workers outlive every session that might still
  /// submit — the pool is joined only after the last holder (or the
  /// registry itself, at process exit) lets go.
  static std::shared_ptr<ThreadPool> Shared(std::size_t min_threads = 0);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// permits 0 when the count is unknowable).
  static std::size_t HardwareConcurrency();

 protected:
  /// For forwarding views: spawns no workers of its own.
  ThreadPool() = default;

 private:
  /// A queued task plus its enqueue time, so the worker that dequeues it
  /// can report the queue wait to the process-wide metrics
  /// (queryer_threadpool_task_wait_seconds / _queue_depth).
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::atomic<std::size_t> num_threads_{0};
  std::queue<QueuedTask> queue_;
  std::mutex mutex_;
  std::condition_variable ready_;
  bool stopping_ = false;
};

/// \brief Width-capped view on a backing pool (usually the process-wide
/// shared one). Tasks run on the backing pool's workers, but num_threads()
/// reports at most `cap`, so everything that sizes its chunking from the
/// pool honors the owner's configured parallelism instead of silently
/// widening to whatever the shared pool grew to. Keeps the backing pool
/// alive.
class CappedThreadPool final : public ThreadPool {
 public:
  CappedThreadPool(std::shared_ptr<ThreadPool> backing, std::size_t cap)
      : backing_(std::move(backing)), cap_(cap == 0 ? 1 : cap) {}

  std::size_t num_threads() const override {
    std::size_t width = backing_->num_threads();
    return width < cap_ ? width : cap_;
  }
  void Submit(std::function<void()> task) override {
    backing_->Submit(std::move(task));
  }

 private:
  std::shared_ptr<ThreadPool> backing_;
  std::size_t cap_;
};

/// \brief Counting semaphore (C++17 has none): the engine's admission
/// control for EngineOptions::max_concurrent_queries.
class Semaphore {
 public:
  /// `count` == 0 means unlimited (Acquire never blocks).
  explicit Semaphore(std::size_t count) : available_(count), unlimited_(count == 0) {}

  void Acquire();
  void Release();

  /// Acquire with a bounded wait: returns false if no slot freed up within
  /// `timeout_seconds` (the caller sheds the request instead of queueing
  /// forever). A successful timed acquire records its wait in the
  /// histogram exactly like Acquire; a shed one records nothing — the
  /// admission-wait histogram stays the admitted-session distribution.
  bool TryAcquireFor(double timeout_seconds);

  /// Re-initializes the capacity. Only valid while no slot is held (the
  /// engine's registration-time setters) — existing holders' Releases
  /// would otherwise over-count the new capacity.
  void Reset(std::size_t count);

  /// When set, every Acquire records how long it waited for a slot
  /// (including the zero-wait fast path, so the histogram's count is the
  /// admitted-session count). The histogram must outlive the semaphore —
  /// the engine points it at the process-wide metrics registry.
  void set_wait_histogram(LatencyHistogram* histogram) {
    wait_histogram_ = histogram;
  }

  /// RAII slot: acquired on construction, released on destruction —
  /// unless Disarm() transferred ownership (QueryCursor takes its
  /// session's slot over this way).
  class Slot {
   public:
    /// Tag for adopting a slot the caller already acquired (e.g. through
    /// TryAcquireFor) instead of acquiring a fresh one.
    struct Adopt {};

    explicit Slot(Semaphore* semaphore) : semaphore_(semaphore) {
      semaphore_->Acquire();
    }
    Slot(Semaphore* semaphore, Adopt) : semaphore_(semaphore) {}
    ~Slot() {
      if (semaphore_ != nullptr) semaphore_->Release();
    }
    Slot(const Slot&) = delete;
    Slot& operator=(const Slot&) = delete;

    /// Gives the slot up without releasing it; the caller now owns the
    /// release.
    void Disarm() { semaphore_ = nullptr; }

   private:
    Semaphore* semaphore_;
  };

 private:
  std::mutex mutex_;
  std::condition_variable available_cv_;
  std::size_t available_;
  bool unlimited_;
  LatencyHistogram* wait_histogram_ = nullptr;
};

/// \brief Half-open index range [begin, end) of one ParallelFor chunk.
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// \brief Splits [0, n) into at most `num_chunks` contiguous non-empty
/// ranges of near-equal size (the first n % num_chunks chunks get one extra
/// element). Returns fewer than `num_chunks` ranges when n < num_chunks and
/// an empty vector when n == 0. The chunking depends only on (n, num_chunks),
/// never on scheduling — parallel phases rely on this for determinism.
std::vector<ChunkRange> SplitRange(std::size_t n, std::size_t num_chunks);

/// \brief Splits [0, n) into contiguous chunks of exactly `chunk_size`
/// elements (the last chunk may be shorter). Unlike SplitRange, the chunk
/// boundaries do not depend on the worker count, so phases whose
/// chunk-order merge must be identical at every pool width (meta-blocking
/// edge weighting, parallel Group-Entities aggregation) chunk with this.
std::vector<ChunkRange> FixedSizeChunks(std::size_t n, std::size_t chunk_size);

/// Body of a ParallelFor: processes [begin, end) as chunk `chunk_index`.
using ParallelForBody =
    std::function<Status(std::size_t chunk_index, std::size_t begin,
                         std::size_t end)>;

/// \brief Runs `body` over the chunks of [0, n), blocking until all finish.
///
/// `num_chunks == 0` defaults to the pool width (1 without a pool). With a
/// null or single-worker pool, chunks run inline on the calling thread in
/// ascending order — exact sequential semantics. Otherwise every chunk is
/// submitted to the pool; exceptions a body throws become Internal Statuses.
/// If several chunks fail, the Status of the lowest chunk index wins, so the
/// reported error does not depend on scheduling. All chunks run to
/// completion even when one fails (no cancellation), keeping partial writes
/// of failing runs well-defined for the caller — the inline path honors
/// this too.
Status ParallelFor(ThreadPool* pool, std::size_t n, const ParallelForBody& body,
                   std::size_t num_chunks = 0);

/// \brief ParallelFor over caller-provided chunks.
///
/// Callers that size per-chunk result buffers from a chunk list must pass
/// that same list here (rather than trusting an internal re-split to line
/// up), so chunk_index always addresses their buffers correctly.
Status ParallelFor(ThreadPool* pool, const std::vector<ChunkRange>& chunks,
                   const ParallelForBody& body);

}  // namespace queryer

#endif  // QUERYER_PARALLEL_THREAD_POOL_H_
