// ReorderWindow: the bounded in-order result window behind every
// morsel-driven parallel operator (TableScanOp's parallel scan, HashJoinOp's
// parallel probe). Workers complete work items out of order; the consumer
// receives them strictly in submission order, so a parallel operator's
// output is bit-identical to its sequential execution at every thread count.
//
// The window also provides the backpressure that bounds memory: at most
// `window_size` items may be in flight (acquired but not yet emitted) at
// once, so a fast pool can never pile up more than `window_size` finished
// result buffers behind a slow consumer. Coordinators pace their task
// submission with TryAcquire — prime the window at Open, then refund one
// slot per consumed item — instead of throttling inside the pool.

#ifndef QUERYER_PARALLEL_REORDER_WINDOW_H_
#define QUERYER_PARALLEL_REORDER_WINDOW_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/status.h"

namespace queryer {

/// Minimum rows per morsel, shared by every morsel-driven operator
/// (TableScanOp, HashJoinOp's probe, GroupEntitiesOp's aggregation):
/// parallel operators never cut their input finer than this, so tiny batch
/// sizes do not degenerate into per-row tasks.
inline constexpr std::size_t kMinMorselRows = 1024;

/// max(batch_size, kMinMorselRows): the morsel granularity of an operator
/// running with RowBatch capacity `batch_size`.
inline constexpr std::size_t MorselRowsFor(std::size_t batch_size) {
  return batch_size < kMinMorselRows ? kMinMorselRows : batch_size;
}

/// \brief Bounded reorder window between one coordinator thread and many
/// worker tasks.
///
/// Roles and thread-safety contract:
///
///  * The COORDINATOR (single thread) calls TryAcquire to reserve slot
///    indices 0, 1, 2, ... for dispatch, and AwaitNext to block for the
///    next in-order result. TryAcquire fails exactly while `window_size`
///    slots are in flight — that bound is the backpressure invariant: the
///    map of finished-but-unemitted results never holds more than
///    `window_size` entries.
///
///  * WORKERS (any thread) call Complete(slot, value) or Fail(slot, error)
///    exactly once per acquired slot. Every acquired slot MUST eventually
///    be completed or failed, even by cancelled workers (deposit an empty
///    value), or AwaitNext deadlocks.
///
/// Failure: the first reported error wins (later errors are dropped), and
/// AwaitNext surfaces it as soon as it can make progress — possibly before
/// emitting earlier successful slots, since the query is doomed either way.
/// A failed AwaitNext also cancels the window.
///
/// Cancellation is cooperative: Cancel() only raises a flag. In-flight
/// workers poll cancelled() and deposit empty results, so a window shared
/// via shared_ptr stays safe after the consuming operator is destroyed
/// mid-stream (the straggler tasks finish against it and the last
/// reference frees it). A window may additionally be linked to a
/// SESSION-level cancel flag (LinkSessionCancel): cancelled() then also
/// reports true once that flag is raised, which is how
/// QueryCursor::Cancel() reaches into every morsel-driven operator of an
/// in-flight query without touching the operators themselves.
///
/// T must be movable and default-constructible (Fail deposits a
/// default-constructed placeholder to unblock the coordinator).
template <typename T>
class ReorderWindow {
 public:
  /// `window_size` is clamped to at least 1; 1 degenerates to fully
  /// serialized dispatch (acquire, await, acquire, ...), which is the
  /// sequential execution order.
  explicit ReorderWindow(std::size_t window_size)
      : window_size_(window_size == 0 ? 1 : window_size) {}

  /// Coordinator: reserves the next slot index for dispatch. Returns false
  /// while `window_size` slots are in flight (the backpressure bound).
  bool TryAcquire(std::size_t* slot) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (acquired_ - emitted_ >= window_size_) return false;
    *slot = acquired_++;
    return true;
  }

  /// Coordinator: true while an acquired slot has not been emitted yet —
  /// i.e. AwaitNext has something to wait for.
  bool HasPending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return emitted_ < acquired_;
  }

  /// Coordinator: true when TryAcquire would succeed.
  bool HasCapacity() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return acquired_ - emitted_ < window_size_;
  }

  /// Slots emitted so far == the index AwaitNext waits for next.
  std::size_t emitted() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return emitted_;
  }

  /// Coordinator: blocks until the next in-order slot is completed, then
  /// moves its value out. Precondition: HasPending(). If any worker failed,
  /// returns that (first-reported) error and cancels the window.
  Result<T> AwaitNext() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return failed_ || done_.count(emitted_) > 0; });
    if (failed_) {
      cancelled_.store(true, std::memory_order_release);
      return Status::ExecutionError(error_);
    }
    auto it = done_.find(emitted_);
    T value = std::move(it->second);
    done_.erase(it);
    ++emitted_;
    return value;
  }

  /// Worker: deposits the result of `slot` (completions may arrive in any
  /// order). Never blocks.
  void Complete(std::size_t slot, T value) {
    std::lock_guard<std::mutex> lock(mutex_);
    done_.emplace(slot, std::move(value));
    ready_.notify_all();
  }

  /// Worker: reports failure of `slot`. The first error is kept; the slot
  /// is filled with a placeholder so the coordinator always wakes up.
  void Fail(std::size_t slot, std::string error) {
    std::lock_guard<std::mutex> lock(mutex_);
    failed_ = true;
    if (error_.empty()) error_ = std::move(error);
    done_.emplace(slot, T{});
    ready_.notify_all();
  }

  /// Raises the cooperative cancellation flag (idempotent). Workers poll
  /// cancelled() and must still Complete/Fail their slot afterwards.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire) ||
           (session_cancel_ != nullptr &&
            session_cancel_->load(std::memory_order_acquire));
  }

  /// Links an external (session-level) cancellation flag: cancelled() also
  /// reports true once `*flag` is set. Must be called before any worker
  /// task can touch the window (i.e. before the first dispatch) — the
  /// shared_ptr itself is written without synchronization. Shared
  /// ownership keeps the flag alive for straggler tasks that outlive the
  /// session that raised it.
  void LinkSessionCancel(std::shared_ptr<const std::atomic<bool>> flag) {
    session_cancel_ = std::move(flag);
  }

 private:
  const std::size_t window_size_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  /// Completed slots waiting for in-order emission; bounded by window_size_.
  std::map<std::size_t, T> done_;
  std::size_t acquired_ = 0;  // Slots handed out by TryAcquire.
  std::size_t emitted_ = 0;   // Slots moved out by AwaitNext.
  bool failed_ = false;
  std::string error_;
  std::atomic<bool> cancelled_{false};
  /// Session-level flag this window observes; null for standalone windows.
  std::shared_ptr<const std::atomic<bool>> session_cancel_;
};

}  // namespace queryer

#endif  // QUERYER_PARALLEL_REORDER_WINDOW_H_
