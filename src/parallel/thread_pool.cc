#include "parallel/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace queryer {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  num_threads_.store(workers_.size(), std::memory_order_release);
}

void ThreadPool::EnsureWorkers(std::size_t num_threads) {
  std::lock_guard<std::mutex> lock(mutex_);
  QUERYER_CHECK(!stopping_);
  while (workers_.size() < num_threads) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  num_threads_.store(workers_.size(), std::memory_order_release);
}

std::shared_ptr<ThreadPool> ThreadPool::Shared(std::size_t min_threads) {
  if (min_threads == 0) min_threads = HardwareConcurrency();
  // Function-local statics: the pool is created on first demand and torn
  // down after main (workers are joined in ~ThreadPool then — no dangling
  // threads at static destruction, because the pool owns nothing beyond
  // its queue and the engines holding the shared_ptr are gone first).
  static std::mutex registry_mutex;
  static std::shared_ptr<ThreadPool> shared_pool;
  std::lock_guard<std::mutex> lock(registry_mutex);
  if (shared_pool == nullptr) {
    shared_pool = std::make_shared<ThreadPool>(min_threads);
  } else {
    shared_pool->EnsureWorkers(min_threads);
  }
  return shared_pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  QUERYER_DCHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    QUERYER_CHECK(!stopping_);
    queue_.push({std::move(task), std::chrono::steady_clock::now()});
  }
  GlobalEngineMetrics().pool_queue_depth->Add(1);
  ready_.notify_one();
}

std::size_t ThreadPool::HardwareConcurrency() {
  std::size_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void Semaphore::Acquire() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (wait_histogram_ != nullptr) {
    // Time the wait even on the uncontended path (it observes ~0): the
    // histogram's count then equals the admitted-session count, which is
    // what makes its quantiles meaningful.
    const auto start = std::chrono::steady_clock::now();
    if (!unlimited_) {
      available_cv_.wait(lock,
                         [this] { return unlimited_ || available_ > 0; });
      if (!unlimited_) --available_;
    }
    wait_histogram_->Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
    return;
  }
  if (unlimited_) return;
  available_cv_.wait(lock, [this] { return unlimited_ || available_ > 0; });
  if (!unlimited_) --available_;
}

bool Semaphore::TryAcquireFor(double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (unlimited_) {
    if (wait_histogram_ != nullptr) wait_histogram_->Observe(0.0);
    return true;
  }
  const auto start = std::chrono::steady_clock::now();
  const bool acquired = available_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds),
      [this] { return unlimited_ || available_ > 0; });
  if (!acquired) return false;
  if (!unlimited_) --available_;
  if (wait_histogram_ != nullptr) {
    wait_histogram_->Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }
  return true;
}

void Semaphore::Release() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (unlimited_) return;
    ++available_;
  }
  available_cv_.notify_one();
}

void Semaphore::Reset(std::size_t count) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    available_ = count;
    unlimited_ = count == 0;
  }
  available_cv_.notify_all();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue before honoring shutdown so ~ThreadPool never
      // abandons submitted work.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    const EngineMetrics& metrics = GlobalEngineMetrics();
    metrics.pool_queue_depth->Add(-1);
    metrics.pool_task_wait->Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      task.enqueued)
            .count());
    // Inert: a worker must never unwind or fail, but a chaos schedule can
    // stretch the submit->run window here to shake out waiters' timeouts.
    QUERYER_FAILPOINT_INERT("threadpool.task");
    task.fn();
  }
}

std::vector<ChunkRange> SplitRange(std::size_t n, std::size_t num_chunks) {
  std::vector<ChunkRange> chunks;
  if (n == 0) return chunks;
  if (num_chunks == 0) num_chunks = 1;
  if (num_chunks > n) num_chunks = n;
  const std::size_t base = n / num_chunks;
  const std::size_t remainder = n % num_chunks;
  chunks.reserve(num_chunks);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    std::size_t size = base + (c < remainder ? 1 : 0);
    chunks.push_back({begin, begin + size});
    begin += size;
  }
  return chunks;
}

std::vector<ChunkRange> FixedSizeChunks(std::size_t n, std::size_t chunk_size) {
  std::vector<ChunkRange> chunks;
  if (chunk_size == 0) chunk_size = 1;
  chunks.reserve((n + chunk_size - 1) / chunk_size);
  for (std::size_t begin = 0; begin < n; begin += chunk_size) {
    chunks.push_back({begin, std::min(begin + chunk_size, n)});
  }
  return chunks;
}

namespace {

Status RunBodyCatching(const ParallelForBody& body, std::size_t chunk_index,
                       const ChunkRange& range) {
  try {
    return body(chunk_index, range.begin, range.end);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("ParallelFor body threw: ") + e.what());
  } catch (...) {
    return Status::Internal("ParallelFor body threw a non-std exception");
  }
}

}  // namespace

Status ParallelFor(ThreadPool* pool, std::size_t n, const ParallelForBody& body,
                   std::size_t num_chunks) {
  if (num_chunks == 0) num_chunks = pool != nullptr ? pool->num_threads() : 1;
  return ParallelFor(pool, SplitRange(n, num_chunks), body);
}

Status ParallelFor(ThreadPool* pool, const std::vector<ChunkRange>& chunks,
                   const ParallelForBody& body) {
  if (chunks.empty()) return Status::OK();

  if (pool == nullptr || pool->num_threads() < 2 || chunks.size() < 2) {
    // Run every chunk even after a failure, mirroring the pooled path's
    // no-cancellation contract, and report the lowest failing chunk.
    Status first_error;
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      Status status = RunBodyCatching(body, c, chunks[c]);
      if (!status.ok() && first_error.ok()) first_error = std::move(status);
    }
    return first_error;
  }

  std::vector<Status> statuses(chunks.size());
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t remaining = chunks.size();
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    pool->Submit([&, c] {
      Status status = RunBodyCatching(body, c, chunks[c]);
      std::lock_guard<std::mutex> lock(done_mutex);
      statuses[c] = std::move(status);
      if (--remaining == 0) done_cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }
  for (Status& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

}  // namespace queryer
