#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/logging.h"

namespace queryer {

// ---------------------------------------------------------------------------
// HistogramSnapshot
// ---------------------------------------------------------------------------

double HistogramSnapshot::Quantile(double p) const {
  if (count == 0) return 0;
  p = std::min(std::max(p, 0.0), 1.0);
  // Rank of the target observation (1-based), then walk the buckets.
  const double rank = p * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      const double lower = i == 0 ? 0.0 : LatencyHistogram::BucketBound(i - 1);
      const double upper = LatencyHistogram::BucketBound(i);
      const double within =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::min(within, 1.0);
    }
    cumulative += in_bucket;
  }
  return LatencyHistogram::BucketBound(buckets.empty() ? 0 : buckets.size() - 1);
}

HistogramSnapshot HistogramSnapshot::Since(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot delta;
  delta.buckets.resize(buckets.size());
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t before = i < earlier.buckets.size() ? earlier.buckets[i] : 0;
    delta.buckets[i] = buckets[i] >= before ? buckets[i] - before : 0;
  }
  delta.count = count >= earlier.count ? count - earlier.count : 0;
  delta.sum_seconds = std::max(0.0, sum_seconds - earlier.sum_seconds);
  return delta;
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

double LatencyHistogram::BucketBound(std::size_t i) {
  if (i >= kNumBuckets - 1) i = kNumBuckets - 2;  // Overflow bucket.
  return kFirstBucketSeconds * static_cast<double>(1ull << i);
}

void LatencyHistogram::Observe(double seconds) {
  if (seconds < 0 || !std::isfinite(seconds)) seconds = 0;
  std::size_t bucket = kNumBuckets - 1;
  for (std::size_t i = 0; i < kNumBuckets - 1; ++i) {
    if (seconds <= BucketBound(i)) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                       std::memory_order_relaxed);
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kNumBuckets);
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_seconds =
      static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  return snap;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

namespace {

enum class MetricKind { kCounter, kGauge, kHistogram };

struct Instrument {
  MetricKind kind;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<LatencyHistogram> histogram;
};

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

}  // namespace

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  // std::map keeps exports sorted by name (deterministic output).
  std::map<std::string, Instrument> instruments;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  // One leaked Impl per (leaked) registry.
  static Impl* impl = new Impl();
  return *impl;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  Instrument& inst = state.instruments[name];
  if (inst.counter == nullptr) {
    QUERYER_CHECK(inst.gauge == nullptr && inst.histogram == nullptr);
    inst.kind = MetricKind::kCounter;
    inst.counter = std::make_unique<Counter>();
  }
  return inst.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  Instrument& inst = state.instruments[name];
  if (inst.gauge == nullptr) {
    QUERYER_CHECK(inst.counter == nullptr && inst.histogram == nullptr);
    inst.kind = MetricKind::kGauge;
    inst.gauge = std::make_unique<Gauge>();
  }
  return inst.gauge.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  Instrument& inst = state.instruments[name];
  if (inst.histogram == nullptr) {
    QUERYER_CHECK(inst.counter == nullptr && inst.gauge == nullptr);
    inst.kind = MetricKind::kHistogram;
    inst.histogram = std::make_unique<LatencyHistogram>();
  }
  return inst.histogram.get();
}

std::string MetricsRegistry::ExportJson() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  std::ostringstream counters, gauges, histograms;
  bool first_counter = true, first_gauge = true, first_histogram = true;
  for (const auto& [name, inst] : state.instruments) {
    switch (inst.kind) {
      case MetricKind::kCounter:
        if (!first_counter) counters << ",";
        first_counter = false;
        counters << "\"" << name << "\":" << inst.counter->Value();
        break;
      case MetricKind::kGauge:
        if (!first_gauge) gauges << ",";
        first_gauge = false;
        gauges << "\"" << name << "\":" << inst.gauge->Value();
        break;
      case MetricKind::kHistogram: {
        if (!first_histogram) histograms << ",";
        first_histogram = false;
        HistogramSnapshot snap = inst.histogram->Snapshot();
        histograms << "\"" << name << "\":{\"count\":" << snap.count
                   << ",\"sum_seconds\":" << FormatDouble(snap.sum_seconds)
                   << ",\"p50\":" << FormatDouble(snap.Quantile(0.50))
                   << ",\"p95\":" << FormatDouble(snap.Quantile(0.95))
                   << ",\"p99\":" << FormatDouble(snap.Quantile(0.99))
                   << ",\"buckets\":[";
        for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
          if (i > 0) histograms << ",";
          histograms << snap.buckets[i];
        }
        histograms << "]}";
        break;
      }
    }
  }
  std::string out = "{\"counters\":{";
  out += counters.str();
  out += "},\"gauges\":{";
  out += gauges.str();
  out += "},\"histograms\":{";
  out += histograms.str();
  out += "}}";
  return out;
}

std::string MetricsRegistry::ExportPrometheus() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  std::ostringstream out;
  for (const auto& [name, inst] : state.instruments) {
    switch (inst.kind) {
      case MetricKind::kCounter:
        out << "# TYPE " << name << " counter\n"
            << name << " " << inst.counter->Value() << "\n";
        break;
      case MetricKind::kGauge:
        out << "# TYPE " << name << " gauge\n"
            << name << " " << inst.gauge->Value() << "\n";
        break;
      case MetricKind::kHistogram: {
        HistogramSnapshot snap = inst.histogram->Snapshot();
        out << "# TYPE " << name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i + 1 < snap.buckets.size(); ++i) {
          cumulative += snap.buckets[i];
          out << name << "_bucket{le=\""
              << FormatDouble(LatencyHistogram::BucketBound(i)) << "\"} "
              << cumulative << "\n";
        }
        out << name << "_bucket{le=\"+Inf\"} " << snap.count << "\n"
            << name << "_sum " << FormatDouble(snap.sum_seconds) << "\n"
            << name << "_count " << snap.count << "\n";
        break;
      }
    }
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// EngineMetrics
// ---------------------------------------------------------------------------

const EngineMetrics& GlobalEngineMetrics() {
  static const EngineMetrics* metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    auto* m = new EngineMetrics();
    m->queries_opened = reg.GetCounter("queryer_queries_opened_total");
    m->queries_executed = reg.GetCounter("queryer_queries_executed_total");
    m->queries_cancelled = reg.GetCounter("queryer_queries_cancelled_total");
    m->queries_deadline_exceeded =
        reg.GetCounter("queryer_queries_deadline_exceeded_total");
    m->queries_abandoned = reg.GetCounter("queryer_queries_abandoned_total");
    m->queries_failed = reg.GetCounter("queryer_queries_failed_total");
    m->sessions_shed = reg.GetCounter("queryer_sessions_shed_total");
    m->cancelled_in_resolution =
        reg.GetCounter("queryer_sessions_cancelled_in_resolution_total");
    m->admission_wait = reg.GetHistogram("queryer_admission_wait_seconds");
    m->comparisons_executed =
        reg.GetCounter("queryer_comparisons_executed_total");
    m->comparisons_skipped_linked =
        reg.GetCounter("queryer_comparisons_skipped_linked_total");
    m->comparisons_skipped_inflight =
        reg.GetCounter("queryer_comparisons_skipped_inflight_total");
    m->matches_found = reg.GetCounter("queryer_matches_found_total");
    m->link_index_hits = reg.GetCounter("queryer_link_index_hits_total");
    m->link_index_misses = reg.GetCounter("queryer_link_index_misses_total");
    m->scan_morsels = reg.GetCounter("queryer_scan_morsels_total");
    m->probe_morsels = reg.GetCounter("queryer_probe_morsels_total");
    m->pool_queue_depth = reg.GetGauge("queryer_threadpool_queue_depth");
    m->pool_task_wait =
        reg.GetHistogram("queryer_threadpool_task_wait_seconds");
    m->li_log_appends = reg.GetCounter("queryer_li_log_appends_total");
    m->li_log_bytes = reg.GetCounter("queryer_li_log_bytes_total");
    m->li_log_compactions = reg.GetCounter("queryer_li_log_compactions_total");
    m->snapshots_written = reg.GetCounter("queryer_snapshots_written_total");
    m->recovery_replayed_records =
        reg.GetCounter("queryer_recovery_replayed_records_total");
    m->recovery_torn_tails =
        reg.GetCounter("queryer_recovery_torn_tails_total");
    m->li_log_append_wait =
        reg.GetHistogram("queryer_li_log_append_wait_seconds");
    m->snapshot_flush_wait =
        reg.GetHistogram("queryer_snapshot_flush_wait_seconds");
    return m;
  }();
  return *metrics;
}

// ---------------------------------------------------------------------------
// ServerMetrics
// ---------------------------------------------------------------------------

const ServerMetrics& GlobalServerMetrics() {
  static const ServerMetrics* metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    auto* m = new ServerMetrics();
    m->connections_accepted =
        reg.GetCounter("queryer_server_connections_accepted_total");
    m->connections_refused =
        reg.GetCounter("queryer_server_connections_refused_total");
    m->idle_disconnects =
        reg.GetCounter("queryer_server_idle_disconnects_total");
    m->connections_active = reg.GetGauge("queryer_server_connections_active");
    m->bytes_read = reg.GetCounter("queryer_server_bytes_read_total");
    m->bytes_written = reg.GetCounter("queryer_server_bytes_written_total");
    m->frames_received = reg.GetCounter("queryer_server_frames_received_total");
    m->responses_sent = reg.GetCounter("queryer_server_responses_sent_total");
    m->protocol_errors =
        reg.GetCounter("queryer_server_protocol_errors_total");
    m->requests_shed = reg.GetCounter("queryer_server_requests_shed_total");
    m->plan_cache_hits = reg.GetCounter("queryer_plan_cache_hits_total");
    m->plan_cache_misses = reg.GetCounter("queryer_plan_cache_misses_total");
    m->result_cache_hits = reg.GetCounter("queryer_result_cache_hits_total");
    m->result_cache_misses =
        reg.GetCounter("queryer_result_cache_misses_total");
    m->result_cache_invalidated =
        reg.GetCounter("queryer_result_cache_invalidated_total");
    m->result_cache_insertions =
        reg.GetCounter("queryer_result_cache_insertions_total");
    m->request_latency =
        reg.GetHistogram("queryer_server_request_seconds");
    return m;
  }();
  return *metrics;
}

}  // namespace queryer
