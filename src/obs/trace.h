// Per-session tracing: records Chrome trace-event JSON that loads directly
// in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// A TraceSink is attached to a query session via EngineOptions::trace_sink.
// When no sink is attached, instrumentation sites cost ZERO — a TraceSpan
// constructed with a null sink takes no clock reading and records nothing
// (verified by obs_test via TraceSink::TotalEventsRecorded()).
//
// Event model (docs/OBSERVABILITY.md documents the schema in full):
//  * Complete events (ph:"X"): one span per plan / open / operator /
//    ER-stage / emit, duration in microseconds.
//  * Instant events (ph:"i"): one per scan/probe morsel, recorded ON the
//    worker thread that ran it, so Perfetto renders one lane per worker.
// Timestamps are microseconds since the sink's construction; thread ids are
// small dense integers assigned per OS thread on first use.

#ifndef QUERYER_OBS_TRACE_H_
#define QUERYER_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace queryer {

/// \brief Thread-safe in-memory buffer of trace events for one session (or
/// one process run — sinks may be shared across sessions; events carry the
/// session id in their args). Flushed to JSON on demand or at destruction.
class TraceSink {
 public:
  using Clock = std::chrono::steady_clock;

  TraceSink();
  /// Convenience: writes ToJson() to `path` when the sink is destroyed.
  explicit TraceSink(std::string path);
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Records a complete ("X") span. `args_json` is either empty or a JSON
  /// object body without braces, e.g. `"rows":12,"batches":3`.
  void Complete(std::string name, const char* category, Clock::time_point begin,
                Clock::time_point end, std::string args_json = {});

  /// Records an instant ("i") event at now, attributed to the calling
  /// thread — use from worker-thread task bodies.
  void Instant(std::string name, const char* category,
               std::string args_json = {});

  /// The sink's epoch; span begin/end time points must come from Clock.
  Clock::time_point epoch() const { return epoch_; }

  std::size_t event_count() const;

  /// Full trace document: {"traceEvents":[...]}.
  std::string ToJson() const;

  /// Writes ToJson() to a file; returns false (and logs to stderr) on I/O
  /// failure.
  bool WriteTo(const std::string& path) const;

  /// Process-wide count of events ever recorded into any sink. Lets tests
  /// assert the zero-overhead-when-off property: run with no sink attached
  /// and check this does not move.
  static std::uint64_t TotalEventsRecorded();

 private:
  struct Event {
    std::string name;      // Owned: the sink can outlive whoever named the
    const char* category;  // span. Categories are string literals.
    char phase;            // 'X' or 'i'.
    std::int64_t ts_micros;
    std::int64_t dur_micros;  // Complete events only.
    std::uint32_t tid;
    std::string args_json;
  };

  std::int64_t MicrosSince(Clock::time_point tp) const;
  void Append(Event event);

  const Clock::time_point epoch_;
  std::string path_;  // Empty unless the write-at-destruction ctor was used.
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

/// \brief RAII span: reads the clock at construction and records a Complete
/// event at destruction. With a null sink it is a complete no-op — no clock
/// read, no allocation.
class TraceSpan {
 public:
  TraceSpan(TraceSink* sink, const char* name, const char* category)
      : sink_(sink), name_(name), category_(category) {
    if (sink_ != nullptr) begin_ = TraceSink::Clock::now();
  }
  ~TraceSpan() {
    if (sink_ != nullptr) {
      sink_->Complete(name_, category_, begin_, TraceSink::Clock::now(),
                      std::move(args_json_));
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches args to the span-to-be, e.g. `"rows":42`. No-op when off.
  void set_args(std::string args_json) {
    if (sink_ != nullptr) args_json_ = std::move(args_json);
  }

 private:
  TraceSink* sink_;
  const char* name_;
  const char* category_;
  TraceSink::Clock::time_point begin_{};
  std::string args_json_;
};

/// Small dense id for the calling OS thread (1 = first thread seen).
/// Stable for the thread's lifetime; used as the trace "tid" so Perfetto
/// shows one lane per worker.
std::uint32_t CurrentTraceThreadId();

}  // namespace queryer

#endif  // QUERYER_OBS_TRACE_H_
