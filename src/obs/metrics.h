// Process-wide metrics registry: lock-free counters/gauges and fixed-bucket
// latency histograms, registered by name and exportable as JSON or
// Prometheus text exposition format.
//
// Design rules (docs/OBSERVABILITY.md has the full metric catalog):
//
//  * Hot paths never take a lock and never look anything up: instruments
//    are resolved ONCE by name (registry map under a mutex) and cached as
//    raw pointers — GlobalEngineMetrics() is the engine's cache. Updates
//    are single relaxed atomic RMWs.
//  * Instruments are never destroyed. The registry is intentionally leaked
//    so worker threads draining a pool during static destruction can still
//    record (no destruction-order hazard), and a cached pointer can never
//    dangle.
//  * Histograms use FIXED power-of-two bucket bounds (1 µs … ~67 s), so
//    concurrent Observe calls are one relaxed fetch_add each and exports
//    from different processes are comparable bucket by bucket.
//
// Everything here is TSan-clean by construction; totals are exact (counts
// are sums of atomic increments, not sampled).

#ifndef QUERYER_OBS_METRICS_H_
#define QUERYER_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace queryer {

/// \brief Monotonic counter. Increment from any thread, no locks.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// \brief Up/down gauge (e.g. the ThreadPool queue depth).
class Gauge {
 public:
  void Add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// \brief Consistent point-in-time copy of a histogram, with percentile
/// estimation. Subtract two snapshots (Since) to get the distribution of a
/// bounded interval — bench_concurrent_queries reports per-point admission
/// wait this way.
struct HistogramSnapshot {
  std::vector<std::uint64_t> buckets;  // One count per bucket.
  std::uint64_t count = 0;
  double sum_seconds = 0;

  /// Estimated p-quantile (p in [0,1]) in seconds: finds the bucket holding
  /// the p-th observation and interpolates linearly inside it. 0 when the
  /// snapshot is empty.
  double Quantile(double p) const;

  /// This snapshot minus an earlier one of the same histogram.
  HistogramSnapshot Since(const HistogramSnapshot& earlier) const;
};

/// \brief Fixed-bucket latency histogram. Bucket i covers observations up
/// to kFirstBucketSeconds * 2^i; the last bucket is the overflow bucket.
/// Observe is two relaxed atomic adds — safe and cheap from any thread.
class LatencyHistogram {
 public:
  static constexpr std::size_t kNumBuckets = 27;
  static constexpr double kFirstBucketSeconds = 1e-6;  // 1 µs ... ~67 s.

  /// Upper bound of bucket `i` in seconds (the overflow bucket reports the
  /// same bound as its predecessor for interpolation purposes).
  static double BucketBound(std::size_t i);

  void Observe(double seconds);

  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  /// Total of all observations, in seconds (nanosecond resolution).
  double SumSeconds() const {
    return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) *
           1e-9;
  }

  HistogramSnapshot Snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  // Nanoseconds as an integer: std::atomic<double> fetch_add is not
  // universally lock-free, an integer always is.
  std::atomic<std::uint64_t> sum_nanos_{0};
};

/// \brief Name -> instrument registry. Lookup/registration takes a mutex
/// (do it once, cache the pointer); the instruments themselves are
/// lock-free. Instruments live forever — see the file comment.
class MetricsRegistry {
 public:
  /// The process-wide registry (intentionally leaked, never destroyed).
  static MetricsRegistry& Global();

  /// Returns the instrument registered under `name`, creating it on first
  /// use. Registering the same name as two different kinds aborts.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Histograms carry count/sum/p50/p95/p99 plus the raw buckets. Names are
  /// sorted, so the export is deterministic given the same values.
  std::string ExportJson() const;

  /// Prometheus text exposition format (counters, gauges, and histograms
  /// with cumulative `_bucket{le="..."}` series plus `_sum`/`_count`).
  std::string ExportPrometheus() const;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;
  ~MetricsRegistry() = delete;  // Leaked by design.

  struct Impl;
  Impl& impl() const;
};

/// \brief The engine's cached instrument pointers, resolved once from the
/// global registry. Every field is non-null. See docs/OBSERVABILITY.md for
/// the catalog (names, types, semantics).
struct EngineMetrics {
  // Query session lifecycle (QueryEngine / QueryCursor).
  Counter* queries_opened;             // Sessions admitted and opened.
  Counter* queries_executed;           // Streams drained to the end.
  Counter* queries_cancelled;          // Ended by Cancel().
  Counter* queries_deadline_exceeded;  // Ended by the session deadline.
  Counter* queries_abandoned;          // Closed/destroyed mid-stream.
  Counter* queries_failed;             // Ended by an execution error.
  Counter* sessions_shed;              // Refused admission (timeout).
  Counter* cancelled_in_resolution;    // Cancel/deadline pre-empted ER.
  LatencyHistogram* admission_wait;    // Semaphore::Acquire blocking time.

  // ER pipeline (Deduplicator).
  Counter* comparisons_executed;
  Counter* comparisons_skipped_linked;
  Counter* comparisons_skipped_inflight;
  Counter* matches_found;
  Counter* link_index_hits;    // Query entities served already-resolved.
  Counter* link_index_misses;  // Query entities resolved fresh.

  // Batch pipeline (morsel sources).
  Counter* scan_morsels;
  Counter* probe_morsels;

  // ThreadPool.
  Gauge* pool_queue_depth;           // Tasks submitted, not yet started.
  LatencyHistogram* pool_task_wait;  // Submit -> task start.

  // Persistence tier (src/persist).
  Counter* li_log_appends;       // Link-log records appended.
  Counter* li_log_bytes;         // Bytes appended to link logs.
  Counter* li_log_compactions;   // Log compactions (snapshot + truncate).
  Counter* snapshots_written;    // Snapshot files written (all kinds).
  Counter* recovery_replayed_records;  // Log records replayed on open.
  Counter* recovery_torn_tails;        // Torn log tails truncated on open.
  LatencyHistogram* li_log_append_wait;  // Append (incl. fsync) latency.
  LatencyHistogram* snapshot_flush_wait;  // Snapshot write+flush latency.
};

/// The process-wide EngineMetrics (resolved once, never destroyed).
const EngineMetrics& GlobalEngineMetrics();

/// \brief The query server's cached instrument pointers (src/server), same
/// contract as EngineMetrics: every field non-null, resolved once from the
/// global registry. Catalog in docs/OBSERVABILITY.md.
struct ServerMetrics {
  // Connection lifecycle (QueryServer accept loop + I/O workers).
  Counter* connections_accepted;  // Accepted and assigned to a worker.
  Counter* connections_refused;   // Turned away (limit / accept failpoint).
  Counter* idle_disconnects;      // Closed by the server's idle timeout.
  Gauge* connections_active;      // Currently open connections.

  // Wire traffic.
  Counter* bytes_read;
  Counter* bytes_written;
  Counter* frames_received;   // Complete request frames parsed off the wire.
  Counter* responses_sent;
  Counter* protocol_errors;   // Malformed frames / unknown ops / bad ids.

  // Tenancy.
  Counter* requests_shed;  // Over-quota sheds, all tenants (per-tenant
                           // counters are registered dynamically as
                           // queryer_server_tenant_shed_total_<tenant>).

  // Caches.
  Counter* plan_cache_hits;
  Counter* plan_cache_misses;
  Counter* result_cache_hits;
  Counter* result_cache_misses;
  Counter* result_cache_invalidated;  // Hits rejected by a moved epoch /
                                      // catalog version (entry dropped).
  Counter* result_cache_insertions;

  // Request handling, HELLO to response written (one observation per
  // request frame, protocol errors included).
  LatencyHistogram* request_latency;
};

/// The process-wide ServerMetrics (resolved once, never destroyed).
const ServerMetrics& GlobalServerMetrics();

}  // namespace queryer

#endif  // QUERYER_OBS_METRICS_H_
