#include "obs/operator_profile.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace queryer {

double OperatorProfile::self_seconds() const {
  double child_seconds = 0;
  for (const auto& child : children) child_seconds += child->total_seconds;
  return std::max(0.0, total_seconds - child_seconds);
}

OperatorProfile* PlanProfile::NewNode(OperatorProfile* parent,
                                      std::string label,
                                      OperatorCategory category) {
  auto node = std::make_unique<OperatorProfile>();
  node->label = std::move(label);
  node->category = category;
  OperatorProfile* raw = node.get();
  if (parent == nullptr) {
    QUERYER_CHECK(root_ == nullptr);
    root_ = std::move(node);
  } else {
    parent->children.push_back(std::move(node));
  }
  return raw;
}

namespace {

std::string FormatSeconds(double seconds) {
  char buf[32];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fms", seconds * 1e3);
  }
  return buf;
}

void AppendNode(const OperatorProfile& node, int indent, std::string* out) {
  out->append(static_cast<std::size_t>(indent) * 2, ' ');
  out->append(node.label);
  out->append("  (rows=");
  out->append(std::to_string(node.rows));
  out->append(" batches=");
  out->append(std::to_string(node.batches));
  out->append(" self=");
  out->append(FormatSeconds(node.self_seconds()));
  if (node.open_seconds > 0) {
    out->append(" open=");
    out->append(FormatSeconds(node.open_seconds));
  }
  out->append(")\n");
  for (const auto& child : node.children) {
    AppendNode(*child, indent + 1, out);
  }
}

}  // namespace

std::string PlanProfile::ToString() const {
  std::string out;
  if (root_ != nullptr) AppendNode(*root_, 0, &out);
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

}  // namespace queryer
