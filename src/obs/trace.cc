#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <fstream>

namespace queryer {

namespace {

std::atomic<std::uint64_t> g_total_events{0};
std::atomic<std::uint32_t> g_next_thread_id{0};

}  // namespace

std::uint32_t CurrentTraceThreadId() {
  thread_local std::uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed) + 1;
  return id;
}

TraceSink::TraceSink() : epoch_(Clock::now()) {}

TraceSink::TraceSink(std::string path)
    : epoch_(Clock::now()), path_(std::move(path)) {}

TraceSink::~TraceSink() {
  if (!path_.empty()) WriteTo(path_);
}

std::int64_t TraceSink::MicrosSince(Clock::time_point tp) const {
  return std::chrono::duration_cast<std::chrono::microseconds>(tp - epoch_)
      .count();
}

void TraceSink::Append(Event event) {
  g_total_events.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void TraceSink::Complete(std::string name, const char* category,
                         Clock::time_point begin, Clock::time_point end,
                         std::string args_json) {
  Event event;
  event.name = std::move(name);
  event.category = category;
  event.phase = 'X';
  event.ts_micros = MicrosSince(begin);
  event.dur_micros = std::max<std::int64_t>(0, MicrosSince(end) - event.ts_micros);
  event.tid = CurrentTraceThreadId();
  event.args_json = std::move(args_json);
  Append(std::move(event));
}

void TraceSink::Instant(std::string name, const char* category,
                        std::string args_json) {
  Event event;
  event.name = std::move(name);
  event.category = category;
  event.phase = 'i';
  event.ts_micros = MicrosSince(Clock::now());
  event.dur_micros = 0;
  event.tid = CurrentTraceThreadId();
  event.args_json = std::move(args_json);
  Append(std::move(event));
}

std::size_t TraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string TraceSink::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[160];
  for (const Event& event : events_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += event.name;
    out += "\",\"cat\":\"";
    out += event.category;
    out += "\",\"ph\":\"";
    out += event.phase;
    out += "\",\"pid\":1";
    std::snprintf(buf, sizeof(buf), ",\"tid\":%u,\"ts\":%lld", event.tid,
                  static_cast<long long>(event.ts_micros));
    out += buf;
    if (event.phase == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%lld",
                    static_cast<long long>(event.dur_micros));
      out += buf;
    } else {
      // Instant events: thread scope, so Perfetto draws them in-lane.
      out += ",\"s\":\"t\"";
    }
    if (!event.args_json.empty()) {
      out += ",\"args\":{";
      out += event.args_json;
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

bool TraceSink::WriteTo(const std::string& path) const {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "TraceSink: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  file << ToJson();
  file.flush();
  return file.good();
}

std::uint64_t TraceSink::TotalEventsRecorded() {
  return g_total_events.load(std::memory_order_relaxed);
}

}  // namespace queryer
