// Per-operator runtime stats backing EXPLAIN ANALYZE.
//
// A PlanProfile owns one OperatorProfile node per physical operator,
// mirroring the plan tree. The executor creates the nodes while lowering
// and hands each operator a raw pointer via PhysicalOperator::set_profile;
// the operator's non-virtual Open/Next/Close wrappers write into it (one
// steady_clock read pair per call, nothing when no profile is attached).
//
// Profile writes are single-threaded by construction: only the consumer
// thread that drives the operator tree calls Open/Next/Close, so the fields
// are plain (non-atomic) and TSan-clean. Worker-side morsel work is visible
// in metrics and trace events instead.

#ifndef QUERYER_OBS_OPERATOR_PROFILE_H_
#define QUERYER_OBS_OPERATOR_PROFILE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace queryer {

/// Coarse operator class, used to fold profile self-times into the
/// ExecStats scan/filter/join/project breakdown. Dedup-ish categories are
/// deliberately NOT folded there — their time already lands in the ER-stage
/// seconds and would be double-counted.
enum class OperatorCategory {
  kScan,
  kFilter,
  kGroupFilter,
  kProject,
  kJoin,
  kDedup,
  kDedupJoin,
  kGroup,
  kOther,
};

/// \brief Runtime record for one operator in one session. Lives in the
/// PlanProfile (owned by the cursor), so it survives Close() exactly like
/// ExecStats does.
struct OperatorProfile {
  using Clock = std::chrono::steady_clock;

  std::string label;  // e.g. "TableScan(people)" — from LogicalPlan.
  OperatorCategory category = OperatorCategory::kOther;

  std::uint64_t opens = 0;
  std::uint64_t batches = 0;  // Next calls that returned a (possibly empty) batch.
  std::uint64_t rows = 0;     // Selected rows emitted across all batches.
  double open_seconds = 0;    // Time inside Open (pipeline-breaker work).
  double total_seconds = 0;   // Open + all Next + Close, inclusive of children.

  // Wall-clock envelope of the operator's activity, for trace spans.
  Clock::time_point first_activity{};
  Clock::time_point last_activity{};

  std::vector<std::unique_ptr<OperatorProfile>> children;

  /// Inclusive time minus the children's inclusive time: what this operator
  /// spent itself. Clamped at zero (clock jitter on tiny plans).
  double self_seconds() const;
};

/// \brief The profile tree for one session's plan.
class PlanProfile {
 public:
  /// Adds a node under `parent` (nullptr = make it the root) and returns a
  /// pointer stable for the PlanProfile's lifetime.
  OperatorProfile* NewNode(OperatorProfile* parent, std::string label,
                           OperatorCategory category);

  OperatorProfile* root() const { return root_.get(); }

  /// The annotated plan, e.g.:
  ///   Deduplicate  (rows=87 batches=1 self=12.3ms open=12.1ms)
  ///     TableScan(p)  (rows=100 batches=1 self=0.2ms)
  std::string ToString() const;

 private:
  std::unique_ptr<OperatorProfile> root_;
};

}  // namespace queryer

#endif  // QUERYER_OBS_OPERATOR_PROFILE_H_
