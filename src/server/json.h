// Minimal JSON value for the wire protocol (docs/SERVER.md): parse one
// newline-framed request, build one response. Self-contained on purpose —
// the container ships no JSON library, and the protocol needs only the
// basics: the six JSON kinds, strict parsing with a depth limit, and
// deterministic single-line output (Dump never emits a raw newline, so a
// dumped value is always a valid frame).
//
// Objects preserve insertion order (responses read naturally: ok first,
// then the payload) and lookups are linear — protocol objects have a
// handful of members. Numbers are doubles; the protocol's only numeric
// fields (ids, row counts) are well inside the 2^53 exact-integer range,
// and integral values are printed without a decimal point.

#ifndef QUERYER_SERVER_JSON_H_
#define QUERYER_SERVER_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace queryer {

/// \brief One JSON value: null, bool, number, string, array or object —
/// plus kRaw, a pre-serialized splice for embedding an existing JSON text
/// (the METRICS verb embeds MetricsRegistry::ExportJson this way without
/// re-parsing it). Parse never produces kRaw.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject, kRaw };

  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() = default;  // null

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue Int(std::int64_t n) {
    return Number(static_cast<double>(n));
  }
  static JsonValue Uint(std::uint64_t n) {
    return Number(static_cast<double>(n));
  }
  static JsonValue Str(std::string s);
  static JsonValue MakeArray(Array items = {});
  static JsonValue MakeObject(Object members = {});
  /// Splices `serialized` into the output verbatim. The caller vouches
  /// that it is valid JSON.
  static JsonValue Raw(std::string serialized);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; reading the wrong kind returns a zero value rather
  /// than aborting (protocol handlers validate kinds explicitly).
  bool bool_value() const { return kind_ == Kind::kBool && bool_; }
  double number_value() const { return kind_ == Kind::kNumber ? number_ : 0; }
  const std::string& string_value() const { return string_; }
  const Array& array() const { return array_; }
  Array& array() { return array_; }
  const Object& object() const { return object_; }
  Object& object() { return object_; }

  /// Member of an object by key (first match), null when absent or when
  /// this is not an object.
  const JsonValue* Find(std::string_view key) const;
  /// Appends a member (no de-duplication — build each key once).
  void Set(std::string key, JsonValue value);

  /// Single-line serialization; see the file comment.
  std::string Dump() const;
  void DumpTo(std::string* out) const;

  /// Strict parse of exactly one JSON value (trailing whitespace allowed,
  /// trailing garbage is an error). Depth-limited; malformed input returns
  /// kParseError and never throws.
  static Result<JsonValue> Parse(std::string_view text);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;  // kString value or kRaw serialized text.
  Array array_;
  Object object_;
};

/// Appends `s` JSON-escaped (quotes not included). Control characters
/// become \u00XX, so the output never contains a raw newline.
void AppendJsonEscaped(std::string_view s, std::string* out);

}  // namespace queryer

#endif  // QUERYER_SERVER_JSON_H_
