#include "server/query_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "engine/query_engine.h"
#include "matching/link_index.h"
#include "obs/metrics.h"

namespace queryer {

namespace {

/// Reverse of StatusCodeToString, for building error frames is not needed
/// server-side; the server always has the StatusCode in hand.
JsonValue ErrorFrame(const Status& status, const JsonValue* id) {
  JsonValue error;
  error.Set("code", JsonValue::Str(std::string(StatusCodeToString(
                        status.code()))));
  error.Set("message", JsonValue::Str(status.message()));
  JsonValue frame;
  frame.Set("ok", JsonValue::Bool(false));
  if (id != nullptr) frame.Set("id", *id);
  frame.Set("error", std::move(error));
  return frame;
}

JsonValue OkFrame(const JsonValue* id) {
  JsonValue frame;
  frame.Set("ok", JsonValue::Bool(true));
  if (id != nullptr) frame.Set("id", *id);
  return frame;
}

/// Reads an optional non-negative integer field; false on wrong type.
bool ReadCount(const JsonValue& req, const char* key, bool* present,
               std::uint64_t* out) {
  const JsonValue* v = req.Find(key);
  *present = v != nullptr;
  if (v == nullptr) return true;
  if (!v->is_number() || v->number_value() < 0) return false;
  *out = static_cast<std::uint64_t>(v->number_value());
  return true;
}

/// The validity stamp of `plan`'s answer right now: the engine's catalog
/// version plus the Link Index epoch of every involved runtime. See
/// result_cache.h for why this is captured after execution on insert.
ResultFingerprint FingerprintFor(const QueryEngine& engine,
                                 const PreparedQuery& plan) {
  ResultFingerprint fp;
  fp.catalog_version = engine.catalog_version();
  fp.epochs.reserve(plan.involved_runtimes().size());
  for (const auto& runtime : plan.involved_runtimes()) {
    fp.epochs.push_back(runtime->link_index().epoch());
  }
  return fp;
}

JsonValue RowsToJson(const std::vector<std::vector<std::string>>& rows) {
  JsonValue::Array out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    JsonValue::Array cells;
    cells.reserve(row.size());
    for (const auto& v : row) cells.push_back(JsonValue::Str(v));
    out.push_back(JsonValue::MakeArray(std::move(cells)));
  }
  return JsonValue::MakeArray(std::move(out));
}

JsonValue ColumnsToJson(const std::vector<std::string>& columns) {
  JsonValue::Array out;
  out.reserve(columns.size());
  for (const auto& c : columns) out.push_back(JsonValue::Str(c));
  return JsonValue::MakeArray(std::move(out));
}

JsonValue StatsToJson(const ExecStats& stats) {
  JsonValue out;
  out.Set("comparisons_executed", JsonValue::Uint(stats.comparisons_executed));
  out.Set("comparisons_skipped_linked",
          JsonValue::Uint(stats.comparisons_skipped_linked));
  out.Set("matches_found", JsonValue::Uint(stats.matches_found));
  out.Set("entities_already_resolved",
          JsonValue::Uint(stats.entities_already_resolved));
  out.Set("total_seconds", JsonValue::Number(stats.total_seconds));
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Connection state
// ---------------------------------------------------------------------------

/// One TCP connection: its socket, its handler thread, and the session
/// tables (prepared statements, open cursors) the protocol handles index
/// into. Owned by the server; all fields except `thread`/`done`/`fd` are
/// touched only by the handler thread.
struct QueryServer::Connection {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> done{false};

  std::string tenant;  // Empty until HELLO.

  struct WireCursor {
    CursorPtr cursor;
    /// Keeps the shared plan alive while the cursor streams over it (the
    /// plan cache may evict the entry meanwhile).
    std::shared_ptr<const PreparedQuery> plan;
    bool quota_charged = false;
  };

  std::map<std::uint64_t, std::shared_ptr<const PreparedQuery>> statements;
  std::map<std::uint64_t, WireCursor> cursors;
  std::uint64_t next_statement_id = 1;
  std::uint64_t next_cursor_id = 1;
};

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

QueryServer::QueryServer(QueryEngine* engine, ServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      plan_cache_(options_.plan_cache_capacity),
      result_cache_(options_.result_cache_bytes,
                    options_.result_cache_entry_bytes),
      quotas_(engine->options().max_concurrent_per_tenant) {}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("server already started");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Status::IoError(std::string("bind ") + options_.host + ":" +
                                std::to_string(options_.port) + ": " +
                                std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status st = Status::IoError(std::string("listen: ") +
                                std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void QueryServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Wake every connection blocked in poll/recv; its handler thread then
  // runs the normal disconnect epilogue (cursors close, quota returns).
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (;;) {
    std::unique_ptr<Connection> conn;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.empty()) break;
      conn = std::move(conns_.front());
      conns_.pop_front();
    }
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
}

std::size_t QueryServer::active_connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  std::size_t n = 0;
  for (const auto& conn : conns_) {
    if (!conn->done.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

void QueryServer::ReapFinished() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      if ((*it)->fd >= 0) ::close((*it)->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// I/O helpers
// ---------------------------------------------------------------------------

namespace {

/// Writes the whole buffer; false on any failure (peer gone, injected
/// server.write fault). MSG_NOSIGNAL: a dead peer must surface as EPIPE,
/// not kill the process.
bool WriteAll(int fd, const std::string& data) {
  static Failpoint* write_fp = Failpoints::Global().Get("server.write");
  if (write_fp->armed() && !write_fp->Fire().ok()) return false;
  const ServerMetrics& metrics = GlobalServerMetrics();
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<std::size_t>(n);
    metrics.bytes_written->Increment(static_cast<std::uint64_t>(n));
  }
  return true;
}

/// One response frame onto the wire.
bool WriteFrame(int fd, const JsonValue& frame) {
  std::string line;
  frame.DumpTo(&line);
  line += '\n';
  bool ok = WriteAll(fd, line);
  if (ok) GlobalServerMetrics().responses_sent->Increment();
  return ok;
}

}  // namespace

// ---------------------------------------------------------------------------
// Accept loop
// ---------------------------------------------------------------------------

void QueryServer::AcceptLoop() {
  static Failpoint* accept_fp = Failpoints::Global().Get("server.accept");
  const ServerMetrics& metrics = GlobalServerMetrics();

  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) {
      ReapFinished();
      continue;
    }
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    ReapFinished();

    Status refusal;
    if (accept_fp->armed()) {
      Status injected = accept_fp->Fire();
      if (!injected.ok()) {
        refusal = injected.WithContext("failpoint server.accept");
      }
    }
    if (refusal.ok() && active_connections() >= options_.max_connections) {
      refusal = Status::ResourceExhausted(
          "connection limit reached (" +
          std::to_string(options_.max_connections) + ")");
    }
    if (!refusal.ok()) {
      // Structured refusal, then close: the client learns WHY instead of
      // seeing a bare RST.
      JsonValue frame = ErrorFrame(refusal, nullptr);
      frame.Set("bye", JsonValue::Bool(true));
      WriteFrame(fd, frame);
      ::close(fd);
      metrics.connections_refused->Increment();
      continue;
    }

    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    metrics.connections_accepted->Increment();
    metrics.connections_active->Add(1);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { ConnectionLoop(raw); });
  }
}

// ---------------------------------------------------------------------------
// Connection loop
// ---------------------------------------------------------------------------

void QueryServer::ConnectionLoop(Connection* conn) {
  static Failpoint* read_fp = Failpoints::Global().Get("server.read");
  const ServerMetrics& metrics = GlobalServerMetrics();

  std::string inbuf;
  bool discarding = false;  // Swallowing an oversized frame's tail.
  char chunk[64 * 1024];
  const int idle_ms = options_.idle_timeout > 0
                          ? static_cast<int>(options_.idle_timeout * 1000)
                          : -1;

  for (;;) {
    // Serve every complete frame already buffered before reading again
    // (clients may pipeline).
    std::size_t nl;
    while ((nl = inbuf.find('\n')) != std::string::npos) {
      std::string line = inbuf.substr(0, nl);
      inbuf.erase(0, nl + 1);
      if (discarding) {
        // Tail of a frame we already refused as oversized.
        discarding = false;
        continue;
      }
      if (line.empty()) continue;  // Blank lines are keep-alives.
      if (line.size() > options_.max_frame_bytes) {
        // A complete frame can exceed the cap too (one recv can deliver
        // line + newline together, bypassing the partial-line check below).
        metrics.protocol_errors->Increment();
        JsonValue refusal = ErrorFrame(
            Status::InvalidArgument(
                "frame exceeds max_frame_bytes (" +
                std::to_string(options_.max_frame_bytes) + ")"),
            nullptr);
        if (!WriteFrame(conn->fd, refusal)) goto disconnect;
        continue;
      }
      Stopwatch request_timer;
      metrics.frames_received->Increment();
      JsonValue response = HandleRequest(conn, line);
      bool write_ok = WriteFrame(conn->fd, response);
      metrics.request_latency->Observe(request_timer.ElapsedSeconds());
      if (!write_ok) goto disconnect;
    }

    if (!discarding && inbuf.size() > options_.max_frame_bytes) {
      // The line under construction is already too long: refuse it now and
      // swallow everything up to its newline.
      metrics.protocol_errors->Increment();
      JsonValue frame = ErrorFrame(
          Status::InvalidArgument(
              "frame exceeds max_frame_bytes (" +
              std::to_string(options_.max_frame_bytes) + ")"),
          nullptr);
      if (!WriteFrame(conn->fd, frame)) goto disconnect;
      inbuf.clear();
      discarding = true;
    }

    pollfd pfd{conn->fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, idle_ms);
    if (ready == 0) {
      // Idle timeout: structured goodbye, then close.
      metrics.idle_disconnects->Increment();
      JsonValue frame = ErrorFrame(
          Status::DeadlineExceeded("idle timeout, closing connection"),
          nullptr);
      frame.Set("bye", JsonValue::Bool(true));
      WriteFrame(conn->fd, frame);
      goto disconnect;
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      goto disconnect;
    }
    if (read_fp->armed() && !read_fp->Fire().ok()) goto disconnect;
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      goto disconnect;  // Peer closed (or read error).
    }
    metrics.bytes_read->Increment(static_cast<std::uint64_t>(n));
    inbuf.append(chunk, static_cast<std::size_t>(n));
  }

disconnect:
  // The disconnect epilogue: everything this connection held goes back.
  // Destroying a WireCursor closes its QueryCursor — which releases the
  // engine admission slot and leaves no coordinator claims behind (the
  // cursor contract) — and its quota charge returns here.
  for (auto& [id, wire] : conn->cursors) {
    (void)id;
    wire.cursor.reset();
    if (wire.quota_charged) quotas_.Release(conn->tenant);
  }
  conn->cursors.clear();
  conn->statements.clear();
  ::shutdown(conn->fd, SHUT_RDWR);
  metrics.connections_active->Add(-1);
  conn->done.store(true, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Request dispatch
// ---------------------------------------------------------------------------

JsonValue QueryServer::HandleRequest(Connection* conn,
                                     const std::string& line) {
  const ServerMetrics& metrics = GlobalServerMetrics();

  auto parsed = JsonValue::Parse(line);
  if (!parsed.ok()) {
    metrics.protocol_errors->Increment();
    return ErrorFrame(parsed.status(), nullptr);
  }
  JsonValue req = std::move(parsed).MoveValueUnsafe();
  const JsonValue* id = req.Find("id");
  if (!req.is_object()) {
    metrics.protocol_errors->Increment();
    return ErrorFrame(
        Status::InvalidArgument("request must be a JSON object"), nullptr);
  }
  const JsonValue* op = req.Find("op");
  if (op == nullptr || !op->is_string()) {
    metrics.protocol_errors->Increment();
    return ErrorFrame(
        Status::InvalidArgument("request needs a string \"op\""), id);
  }
  const std::string& verb = op->string_value();

  if (EqualsIgnoreCase(verb, "HELLO")) return HandleHello(conn, req);

  if (conn->tenant.empty()) {
    metrics.protocol_errors->Increment();
    return ErrorFrame(Status::InvalidArgument(
                          "authenticate first: send HELLO with a tenant id"),
                      id);
  }
  if (EqualsIgnoreCase(verb, "PREPARE")) return HandlePrepare(conn, req);
  if (EqualsIgnoreCase(verb, "OPEN")) return HandleOpen(conn, req);
  if (EqualsIgnoreCase(verb, "NEXT")) return HandleNext(conn, req);
  if (EqualsIgnoreCase(verb, "CANCEL")) return HandleCancel(conn, req);
  if (EqualsIgnoreCase(verb, "CLOSE")) return HandleClose(conn, req);
  if (EqualsIgnoreCase(verb, "EXECUTE")) return HandleExecute(conn, req);
  if (EqualsIgnoreCase(verb, "METRICS")) return HandleMetrics(conn, req);

  metrics.protocol_errors->Increment();
  return ErrorFrame(Status::InvalidArgument("unknown op: " + verb), id);
}

JsonValue QueryServer::HandleHello(Connection* conn, const JsonValue& req) {
  const JsonValue* id = req.Find("id");
  const JsonValue* tenant = req.Find("tenant");
  if (tenant == nullptr || !tenant->is_string() ||
      tenant->string_value().empty()) {
    GlobalServerMetrics().protocol_errors->Increment();
    return ErrorFrame(
        Status::InvalidArgument("HELLO needs a non-empty string \"tenant\""),
        id);
  }
  if (!conn->tenant.empty()) {
    GlobalServerMetrics().protocol_errors->Increment();
    return ErrorFrame(Status::InvalidArgument(
                          "already authenticated as \"" + conn->tenant +
                          "\"; open a new connection to switch tenants"),
                      id);
  }
  conn->tenant = tenant->string_value();
  JsonValue frame = OkFrame(id);
  frame.Set("server", JsonValue::Str("queryer"));
  frame.Set("protocol", JsonValue::Int(1));
  return frame;
}

JsonValue QueryServer::HandlePrepare(Connection* conn, const JsonValue& req) {
  const JsonValue* id = req.Find("id");
  const JsonValue* sql = req.Find("sql");
  if (sql == nullptr || !sql->is_string()) {
    GlobalServerMetrics().protocol_errors->Increment();
    return ErrorFrame(
        Status::InvalidArgument("PREPARE needs a string \"sql\""), id);
  }
  auto lookup = plan_cache_.GetOrPrepare(*engine_, sql->string_value());
  if (!lookup.ok()) return ErrorFrame(lookup.status(), id);

  std::uint64_t stmt_id = conn->next_statement_id++;
  conn->statements[stmt_id] = lookup->plan;

  JsonValue frame = OkFrame(id);
  frame.Set("stmt", JsonValue::Uint(stmt_id));
  frame.Set("dedup", JsonValue::Bool(lookup->plan->dedup()));
  frame.Set("cached", JsonValue::Bool(lookup->hit));
  frame.Set("plan", JsonValue::Str(lookup->plan->plan_text()));
  return frame;
}

JsonValue QueryServer::HandleOpen(Connection* conn, const JsonValue& req) {
  const JsonValue* id = req.Find("id");

  // OPEN takes either a prepared handle ("stmt") or inline SQL (which goes
  // through the shared plan cache like PREPARE would).
  std::shared_ptr<const PreparedQuery> plan;
  bool has_stmt = false;
  std::uint64_t stmt_id = 0;
  if (!ReadCount(req, "stmt", &has_stmt, &stmt_id)) {
    GlobalServerMetrics().protocol_errors->Increment();
    return ErrorFrame(
        Status::InvalidArgument("\"stmt\" must be a non-negative number"),
        id);
  }
  if (has_stmt) {
    auto it = conn->statements.find(stmt_id);
    if (it == conn->statements.end()) {
      GlobalServerMetrics().protocol_errors->Increment();
      return ErrorFrame(
          Status::NotFound("no prepared statement " + std::to_string(stmt_id)),
          id);
    }
    plan = it->second;
  } else {
    const JsonValue* sql = req.Find("sql");
    if (sql == nullptr || !sql->is_string()) {
      GlobalServerMetrics().protocol_errors->Increment();
      return ErrorFrame(
          Status::InvalidArgument("OPEN needs \"stmt\" or a string \"sql\""),
          id);
    }
    auto lookup = plan_cache_.GetOrPrepare(*engine_, sql->string_value());
    if (!lookup.ok()) return ErrorFrame(lookup.status(), id);
    plan = lookup->plan;
  }

  // Tenant quota first, engine admission second: an over-quota tenant is
  // shed here without ever occupying (or queueing for) an engine slot.
  if (!quotas_.TryAcquire(conn->tenant)) {
    return ErrorFrame(
        Status::ResourceExhausted("tenant \"" + conn->tenant +
                                  "\" is at its session quota (" +
                                  std::to_string(quotas_.limit()) + ")"),
        id);
  }
  auto cursor = plan->Open();
  if (!cursor.ok()) {
    quotas_.Release(conn->tenant);
    return ErrorFrame(cursor.status(), id);
  }

  std::uint64_t cursor_id = conn->next_cursor_id++;
  Connection::WireCursor wire;
  wire.cursor = std::move(cursor).MoveValueUnsafe();
  wire.plan = std::move(plan);
  wire.quota_charged = true;

  JsonValue frame = OkFrame(id);
  frame.Set("cursor", JsonValue::Uint(cursor_id));
  frame.Set("columns", ColumnsToJson(wire.cursor->columns()));
  frame.Set("batch_size", JsonValue::Uint(wire.cursor->batch_size()));
  conn->cursors[cursor_id] = std::move(wire);
  return frame;
}

JsonValue QueryServer::HandleNext(Connection* conn, const JsonValue& req) {
  const JsonValue* id = req.Find("id");
  bool has_cursor = false;
  std::uint64_t cursor_id = 0;
  if (!ReadCount(req, "cursor", &has_cursor, &cursor_id) || !has_cursor) {
    GlobalServerMetrics().protocol_errors->Increment();
    return ErrorFrame(
        Status::InvalidArgument("NEXT needs a numeric \"cursor\""), id);
  }
  auto it = conn->cursors.find(cursor_id);
  if (it == conn->cursors.end()) {
    GlobalServerMetrics().protocol_errors->Increment();
    return ErrorFrame(
        Status::NotFound("no open cursor " + std::to_string(cursor_id)), id);
  }

  bool has_n = false;
  std::uint64_t n = options_.default_fetch_rows;
  if (!ReadCount(req, "n", &has_n, &n) || n == 0) {
    GlobalServerMetrics().protocol_errors->Increment();
    return ErrorFrame(
        Status::InvalidArgument("\"n\" must be a positive number"), id);
  }
  if (n > options_.max_fetch_rows) n = options_.max_fetch_rows;

  auto rows = it->second.cursor->Fetch(static_cast<std::size_t>(n));
  if (!rows.ok()) {
    // Terminal stream error (cancelled / deadline / execution failure):
    // the cursor already released its engine slot; release the handle and
    // the quota charge, and tell the client as data.
    Status st = rows.status();
    if (it->second.quota_charged) quotas_.Release(conn->tenant);
    conn->cursors.erase(it);
    return ErrorFrame(st, id);
  }

  bool done = rows->size() < n;
  JsonValue frame = OkFrame(id);
  frame.Set("rows", RowsToJson(*rows));
  frame.Set("done", JsonValue::Bool(done));
  if (done) {
    // End of stream: the engine already released the session at the last
    // batch; drop the handle so the quota slot frees without waiting for a
    // CLOSE the client is allowed to skip.
    frame.Set("stats", StatsToJson(it->second.cursor->stats()));
    if (it->second.quota_charged) quotas_.Release(conn->tenant);
    conn->cursors.erase(it);
  }
  return frame;
}

JsonValue QueryServer::HandleCancel(Connection* conn, const JsonValue& req) {
  const JsonValue* id = req.Find("id");
  bool has_cursor = false;
  std::uint64_t cursor_id = 0;
  if (!ReadCount(req, "cursor", &has_cursor, &cursor_id) || !has_cursor) {
    GlobalServerMetrics().protocol_errors->Increment();
    return ErrorFrame(
        Status::InvalidArgument("CANCEL needs a numeric \"cursor\""), id);
  }
  auto it = conn->cursors.find(cursor_id);
  if (it == conn->cursors.end()) {
    GlobalServerMetrics().protocol_errors->Increment();
    return ErrorFrame(
        Status::NotFound("no open cursor " + std::to_string(cursor_id)), id);
  }
  // Cooperative: the flag raises now, the stream reports kCancelled at its
  // next batch boundary (the following NEXT). The handle stays until CLOSE
  // or that NEXT — CANCEL maps onto QueryCursor::Cancel, nothing more.
  it->second.cursor->Cancel();
  return OkFrame(id);
}

JsonValue QueryServer::HandleClose(Connection* conn, const JsonValue& req) {
  const JsonValue* id = req.Find("id");
  bool has_cursor = false;
  std::uint64_t cursor_id = 0;
  if (!ReadCount(req, "cursor", &has_cursor, &cursor_id) || !has_cursor) {
    GlobalServerMetrics().protocol_errors->Increment();
    return ErrorFrame(
        Status::InvalidArgument("CLOSE needs a numeric \"cursor\""), id);
  }
  auto it = conn->cursors.find(cursor_id);
  if (it == conn->cursors.end()) {
    GlobalServerMetrics().protocol_errors->Increment();
    return ErrorFrame(
        Status::NotFound("no open cursor " + std::to_string(cursor_id)), id);
  }
  it->second.cursor.reset();  // Closes: engine slot + claims release here.
  if (it->second.quota_charged) quotas_.Release(conn->tenant);
  conn->cursors.erase(it);
  return OkFrame(id);
}

JsonValue QueryServer::HandleExecute(Connection* conn, const JsonValue& req) {
  const JsonValue* id = req.Find("id");
  const JsonValue* sql_value = req.Find("sql");
  if (sql_value == nullptr || !sql_value->is_string()) {
    GlobalServerMetrics().protocol_errors->Increment();
    return ErrorFrame(
        Status::InvalidArgument("EXECUTE needs a string \"sql\""), id);
  }
  const std::string& sql = sql_value->string_value();

  auto lookup = plan_cache_.GetOrPrepare(*engine_, sql);
  if (!lookup.ok()) return ErrorFrame(lookup.status(), id);
  const std::shared_ptr<const PreparedQuery>& plan = lookup->plan;

  // Result cache: valid only while the CURRENT fingerprint still equals
  // the one the answer was computed under. A hit costs no engine session
  // (and so no quota charge): zero comparisons, zero admission.
  if (auto cached = result_cache_.Get(sql, FingerprintFor(*engine_, *plan))) {
    JsonValue frame = OkFrame(id);
    frame.Set("columns", ColumnsToJson(cached->columns));
    frame.Set("rows", RowsToJson(cached->rows));
    frame.Set("row_count", JsonValue::Uint(cached->rows.size()));
    frame.Set("cached", JsonValue::Bool(true));
    return frame;
  }

  if (!quotas_.TryAcquire(conn->tenant)) {
    return ErrorFrame(
        Status::ResourceExhausted("tenant \"" + conn->tenant +
                                  "\" is at its session quota (" +
                                  std::to_string(quotas_.limit()) + ")"),
        id);
  }

  auto opened = plan->Open();
  if (!opened.ok()) {
    quotas_.Release(conn->tenant);
    return ErrorFrame(opened.status(), id);
  }
  CursorPtr cursor = std::move(opened).MoveValueUnsafe();

  auto result = std::make_shared<CachedResult>();
  result->columns = cursor->columns();
  Status drain_error;
  for (;;) {
    auto page = cursor->Fetch(options_.max_fetch_rows);
    if (!page.ok()) {
      drain_error = page.status();
      break;
    }
    bool done = page->size() < options_.max_fetch_rows;
    for (auto& row : *page) result->rows.push_back(std::move(row));
    if (result->rows.size() > options_.max_execute_rows) {
      drain_error = Status::OutOfRange(
          "answer exceeds max_execute_rows (" +
          std::to_string(options_.max_execute_rows) +
          "); page it with OPEN/NEXT instead");
      break;
    }
    if (done) break;
  }
  ExecStats stats = cursor->stats();
  cursor.reset();  // Session fully released before the quota returns.
  quotas_.Release(conn->tenant);
  if (!drain_error.ok()) return ErrorFrame(drain_error, id);

  // Fingerprint AFTER execution: this run may itself have published links
  // and advanced the involved epochs (see result_cache.h).
  result_cache_.Put(sql, FingerprintFor(*engine_, *plan), result);

  JsonValue frame = OkFrame(id);
  frame.Set("columns", ColumnsToJson(result->columns));
  frame.Set("rows", RowsToJson(result->rows));
  frame.Set("row_count", JsonValue::Uint(result->rows.size()));
  frame.Set("cached", JsonValue::Bool(false));
  frame.Set("stats", StatsToJson(stats));
  return frame;
}

JsonValue QueryServer::HandleMetrics(Connection* conn, const JsonValue& req) {
  (void)conn;
  JsonValue frame = OkFrame(req.Find("id"));
  frame.Set("metrics", JsonValue::Raw(MetricsRegistry::Global().ExportJson()));
  return frame;
}

}  // namespace queryer
