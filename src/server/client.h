// Client: a blocking C++ client for the QueryServer wire protocol.
//
//   QUERYER_ASSIGN_OR_RETURN(Client client,
//                            Client::Connect("127.0.0.1", port, "tenant-a"));
//   QUERYER_ASSIGN_OR_RETURN(auto open, client.Open("SELECT DEDUP ..."));
//   while (true) {
//     QUERYER_ASSIGN_OR_RETURN(auto page, client.Next(open.cursor, 512));
//     ...use page.rows...
//     if (page.done) break;
//   }
//
// One request in flight at a time (the protocol answers in order, the
// client reads one response per call); use one Client per thread. Server
// error frames come back as the engine's own Status taxonomy — the wire
// code string is mapped back to the StatusCode it came from, so
// status.IsResourceExhausted() means the same thing on both sides of the
// socket. bench_server_qps and tools/queryer_cli are both built on this.

#ifndef QUERYER_SERVER_CLIENT_H_
#define QUERYER_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/json.h"

namespace queryer {

/// \brief Maps a wire error-code string (StatusCodeToString output) back
/// to its StatusCode; kInternal for anything unrecognized.
StatusCode StatusCodeFromString(std::string_view name);

/// \brief One protocol connection. Move-only; disconnects on destruction.
class Client {
 public:
  /// Connects and authenticates (HELLO) as `tenant`.
  static Result<Client> Connect(const std::string& host, std::uint16_t port,
                                const std::string& tenant);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends one frame and reads its response. The returned object is the
  /// whole response frame (already vetted: "ok" true). An error frame
  /// comes back as its mapped Status instead.
  Result<JsonValue> Call(const JsonValue& request);

  // -- Typed wrappers over Call -------------------------------------------

  /// PREPARE -> statement handle.
  Result<std::uint64_t> Prepare(const std::string& sql);

  struct OpenInfo {
    std::uint64_t cursor = 0;
    std::vector<std::string> columns;
  };
  /// OPEN with inline SQL / a prepared handle.
  Result<OpenInfo> Open(const std::string& sql);
  Result<OpenInfo> OpenPrepared(std::uint64_t stmt);

  struct Page {
    std::vector<std::vector<std::string>> rows;
    bool done = false;
  };
  /// NEXT: up to `n` rows (0 = server default). done=true means the cursor
  /// is finished and already released server-side — no CLOSE needed.
  Result<Page> Next(std::uint64_t cursor, std::size_t n = 0);

  Status Cancel(std::uint64_t cursor);
  Status Close(std::uint64_t cursor);

  struct ExecuteInfo {
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
    bool cached = false;
    /// comparisons_executed from the response stats (0 for cached answers,
    /// which carry no stats — nothing executed).
    std::uint64_t comparisons_executed = 0;
  };
  /// EXECUTE: one-shot materialized answer.
  Result<ExecuteInfo> Execute(const std::string& sql);

  /// METRICS: the server's metrics registry as raw JSON text.
  Result<std::string> Metrics();

  const std::string& tenant() const { return tenant_; }
  bool connected() const { return fd_ >= 0; }
  void Disconnect();

 private:
  Client() = default;

  Status WriteFrame(const JsonValue& frame);
  /// Reads one newline-terminated frame (blocking).
  Result<JsonValue> ReadFrame();
  static Result<Client::OpenInfo> ParseOpenInfo(const JsonValue& frame);

  int fd_ = -1;
  std::string tenant_;
  std::string inbuf_;
};

}  // namespace queryer

#endif  // QUERYER_SERVER_CLIENT_H_
