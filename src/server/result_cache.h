// ResultCache: the server's bounded cache of small materialized answers.
//
// An EXECUTE answer is cacheable because everything its rows depend on is
// version-stamped: tables are immutable once registered (the catalog
// version covers what a name resolves to), and a DEDUP answer additionally
// depends on the Link Index state of each involved table — which the index
// summarizes as its epoch, bumped by every exclusive publication. So the
// cache key is the SQL text and the entry carries a fingerprint
// (catalog version + the involved tables' Link Index epochs); a lookup
// whose CURRENT fingerprint differs finds the entry stale, drops it and
// misses. Any link publication anywhere — another query resolving entities
// on an involved table, even a concurrent tenant's — moves an epoch and
// thereby invalidates, with no invalidation hooks in the engine at all.
//
// Fingerprints are captured AFTER execution: a first DEDUP run publishes
// links and advances the epoch *while executing*, so a pre-execution
// capture would mark every fresh answer instantly stale. Post-execution
// capture is conservative in the other direction — if a concurrent session
// publishes between our last read and the capture, the entry is born stale
// and the next lookup just misses (correct, merely unlucky).
//
// Entries are tenant-agnostic on purpose: an answer is a pure function of
// (SQL, fingerprint), so tenants share hits. Quota enforcement is not
// bypassed dishonestly — a cache hit consumes no engine session, which is
// exactly why it is free.

#ifndef QUERYER_SERVER_RESULT_CACHE_H_
#define QUERYER_SERVER_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace queryer {

/// \brief The validity stamp of a cached answer. Equality = still fresh.
struct ResultFingerprint {
  std::uint64_t catalog_version = 0;
  /// Link Index epoch of each involved runtime (Prepare order). Empty for
  /// non-DEDUP statements — their answers depend on tables alone.
  std::vector<std::uint64_t> epochs;

  bool operator==(const ResultFingerprint& other) const {
    return catalog_version == other.catalog_version && epochs == other.epochs;
  }
  bool operator!=(const ResultFingerprint& other) const {
    return !(*this == other);
  }
};

/// \brief One materialized answer, shared immutably with any number of
/// concurrent responders.
struct CachedResult {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  /// Approximate heap footprint, used for the cache's byte budget.
  std::size_t ByteSize() const;
};

/// \brief Byte-bounded LRU keyed by SQL text, validated by fingerprint.
/// Thread-safe.
class ResultCache {
 public:
  /// `max_bytes` bounds the cache total; answers larger than
  /// `max_entry_bytes` are never inserted (big results stream, small hot
  /// ones cache).
  ResultCache(std::size_t max_bytes, std::size_t max_entry_bytes);

  /// The cached answer for `sql` if present AND its fingerprint equals
  /// `now`; null otherwise. A present-but-stale entry is erased and
  /// counted as queryer_result_cache_invalidated_total (plus the miss).
  std::shared_ptr<const CachedResult> Get(const std::string& sql,
                                          const ResultFingerprint& now);

  /// Inserts (or replaces) the answer for `sql`. Oversized answers are
  /// ignored. Evicts LRU entries to honor the byte budget.
  void Put(const std::string& sql, ResultFingerprint fingerprint,
           std::shared_ptr<const CachedResult> result);

  std::size_t entries() const;
  std::size_t bytes() const;

 private:
  struct Entry {
    std::string sql;
    ResultFingerprint fingerprint;
    std::shared_ptr<const CachedResult> result;
    std::size_t bytes = 0;
  };

  void EraseLocked(std::list<Entry>::iterator it);

  const std::size_t max_bytes_;
  const std::size_t max_entry_bytes_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // Front = most recent.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::size_t bytes_ = 0;
};

}  // namespace queryer

#endif  // QUERYER_SERVER_RESULT_CACHE_H_
