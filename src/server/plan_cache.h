// PlanCache: the server's shared LRU of prepared plans.
//
// Keyed by (SQL text, engine catalog version): a hot statement is parsed
// and planned once and every later PREPARE / OPEN / EXECUTE that carries
// the same text reuses the PreparedQuery — PreparedQuery::Open() is const
// and documented safe for concurrent opens, so one cached plan serves any
// number of simultaneous sessions across connections and tenants (plans
// hold no tenant state). The catalog version in the key makes staleness
// structural: QueryEngine bumps it on every registration, so a plan bound
// under an older catalog simply stops being findable — no scan, no
// invalidation walk.
//
// Statements are cached by their exact text ("SELECT *" != "select *"):
// normalizing would trade correctness risk for a marginal hit rate, and
// real clients re-send byte-identical statements.

#ifndef QUERYER_SERVER_PLAN_CACHE_H_
#define QUERYER_SERVER_PLAN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "engine/prepared_query.h"

namespace queryer {

class QueryEngine;

/// \brief Bounded LRU of shared PreparedQuery handles. Thread-safe.
class PlanCache {
 public:
  /// `capacity` = max cached plans (>= 1 enforced).
  explicit PlanCache(std::size_t capacity);

  struct Lookup {
    std::shared_ptr<const PreparedQuery> plan;
    bool hit = false;  // True when the plan came from the cache.
  };

  /// The cached plan for `sql` under the engine's CURRENT catalog version,
  /// preparing and inserting on miss. Prepare errors (parse/plan failures)
  /// are returned and never cached — a typo does not occupy a slot, and a
  /// statement that fails only under the current catalog retries cleanly
  /// after the next registration. Counts queryer_plan_cache_{hits,misses}.
  ///
  /// Prepares under the cache lock: planning is pure and fast (no I/O, no
  /// admission), and serializing it means a thundering herd on one cold
  /// statement plans it exactly once.
  Result<Lookup> GetOrPrepare(QueryEngine& engine, const std::string& sql);

  std::size_t size() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const PreparedQuery> plan;
  };

  static std::string MakeKey(const std::string& sql, std::uint64_t version);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // Front = most recent.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace queryer

#endif  // QUERYER_SERVER_PLAN_CACHE_H_
