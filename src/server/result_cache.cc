#include "server/result_cache.h"

#include <utility>

#include "obs/metrics.h"

namespace queryer {

std::size_t CachedResult::ByteSize() const {
  std::size_t total = 0;
  for (const std::string& c : columns) total += c.size() + sizeof(std::string);
  for (const auto& row : rows) {
    total += sizeof(row);
    for (const std::string& v : row) total += v.size() + sizeof(std::string);
  }
  return total;
}

ResultCache::ResultCache(std::size_t max_bytes, std::size_t max_entry_bytes)
    : max_bytes_(max_bytes), max_entry_bytes_(max_entry_bytes) {}

std::shared_ptr<const CachedResult> ResultCache::Get(
    const std::string& sql, const ResultFingerprint& now) {
  const ServerMetrics& metrics = GlobalServerMetrics();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(sql);
  if (it == index_.end()) {
    metrics.result_cache_misses->Increment();
    return nullptr;
  }
  if (it->second->fingerprint != now) {
    // Stale: an epoch moved (a link was published on an involved table) or
    // the catalog changed under the statement. Drop it — re-validation can
    // never succeed, the fingerprint only moves forward.
    metrics.result_cache_invalidated->Increment();
    metrics.result_cache_misses->Increment();
    EraseLocked(it->second);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  metrics.result_cache_hits->Increment();
  return it->second->result;
}

void ResultCache::Put(const std::string& sql, ResultFingerprint fingerprint,
                      std::shared_ptr<const CachedResult> result) {
  if (result == nullptr) return;
  std::size_t entry_bytes = result->ByteSize() + sql.size();
  if (entry_bytes > max_entry_bytes_ || entry_bytes > max_bytes_) return;

  const ServerMetrics& metrics = GlobalServerMetrics();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(sql);
  if (it != index_.end()) EraseLocked(it->second);

  lru_.push_front(
      Entry{sql, std::move(fingerprint), std::move(result), entry_bytes});
  index_[sql] = lru_.begin();
  bytes_ += entry_bytes;
  metrics.result_cache_insertions->Increment();

  while (bytes_ > max_bytes_ && !lru_.empty()) {
    EraseLocked(std::prev(lru_.end()));
  }
}

void ResultCache::EraseLocked(std::list<Entry>::iterator it) {
  bytes_ -= it->bytes;
  index_.erase(it->sql);
  lru_.erase(it);
}

std::size_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

}  // namespace queryer
