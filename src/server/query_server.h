// QueryServer: a long-running multi-tenant front end over one QueryEngine.
//
// Wire protocol (full grammar in docs/SERVER.md): newline-framed JSON over
// TCP — every request is one JSON object on one line, every response one
// JSON object on one line, in request order. Verbs map 1:1 onto the
// engine's streaming API:
//
//   HELLO    {tenant}        authenticate the connection (first frame)
//   PREPARE  {sql}           -> stmt handle (shared plan cache behind it)
//   OPEN     {stmt | sql}    -> cursor handle  (PreparedQuery::Open)
//   NEXT     {cursor, n}     -> up to n rows + done (QueryCursor::Fetch)
//   CANCEL   {cursor}        QueryCursor::Cancel (cursor stays until CLOSE)
//   CLOSE    {cursor}        QueryCursor::Close + handle release
//   EXECUTE  {sql}           one-shot materialized answer (result cache)
//   METRICS  {}              global metrics registry as JSON
//
// Failures are data, not disconnects: every protocol or engine error comes
// back as a structured {"ok":false,"error":{code,message}} frame carrying
// the engine's own Status taxonomy, and the connection stays usable — the
// server never drops a connection mid-stream in response to a bad request.
// Only a peer disconnect, the idle timeout (which sends a structured
// goodbye first) and Stop() end a connection.
//
// Threading: one accept thread plus one dedicated thread per connection,
// bounded by ServerOptions::max_connections (over-limit connections get a
// structured refusal and an immediate close). Connection handlers are
// deliberately NOT ThreadPool::Shared() tasks: the pool's contract forbids
// tasks that block on tasks they enqueue, and a handler blocks inside
// engine calls (Open waits on admission, Fetch waits on morsel workers) —
// running handlers on the pool would deadlock it at saturation. Dedicated
// threads sidestep that whole class of inversion; the engine's pool stays
// the only compute pool.
//
// Tenancy: HELLO binds the connection to a tenant id; every session (open
// cursor or in-flight EXECUTE) is charged to that tenant's quota
// (EngineOptions::max_concurrent_per_tenant) before engine admission —
// see tenant_quotas.h. Disconnect releases everything the connection held:
// cursors close (which releases engine admission slots and abandons any
// coordinator claims) and quota charges return.
//
// Run serving engines with EngineOptions::admission_timeout > 0: a client
// holding one cursor while opening another can otherwise block forever at
// max_concurrent_queries=1 (the engine documents this self-deadlock for
// in-process callers too; a timeout turns it into a clean shed).
//
// Failpoints: server.accept (refuse an accepted connection), server.read
// (treat a read as failed -> disconnect path), server.write (treat a write
// as failed -> disconnect path).

#ifndef QUERYER_SERVER_QUERY_SERVER_H_
#define QUERYER_SERVER_QUERY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "server/json.h"
#include "server/plan_cache.h"
#include "server/result_cache.h"
#include "server/tenant_quotas.h"

namespace queryer {

class QueryEngine;

/// \brief Server configuration. Engine behavior (admission, quotas, batch
/// size) stays in EngineOptions; this is the wire side only.
struct ServerOptions {
  /// Listen address. Loopback by default — the protocol has no transport
  /// security; see docs/SERVER.md before exposing it wider.
  std::string host = "127.0.0.1";
  /// 0 = pick an ephemeral port (read it back from port() after Start).
  std::uint16_t port = 0;
  /// Connection cap; over-limit connections are refused with a structured
  /// frame. Also the bound on connection-handler threads.
  std::size_t max_connections = 256;
  /// Seconds a connection may sit idle (no complete frame) before the
  /// server sends a goodbye frame and closes it. 0 = never.
  double idle_timeout = 300;
  /// Shared prepared-plan cache capacity (entries).
  std::size_t plan_cache_capacity = 128;
  /// Result cache budget (total bytes / per-answer bytes). Answers larger
  /// than the per-entry bound are never cached.
  std::size_t result_cache_bytes = 8u << 20;
  std::size_t result_cache_entry_bytes = 256u << 10;
  /// Hard bound on one request frame; longer lines are discarded and
  /// answered with a structured error.
  std::size_t max_frame_bytes = 1u << 20;
  /// NEXT row count when the request omits n, and the per-NEXT ceiling.
  std::size_t default_fetch_rows = 1024;
  std::size_t max_fetch_rows = 1u << 16;
  /// EXECUTE materialization bound: answers with more rows fail with
  /// kOutOfRange ("page with OPEN/NEXT instead").
  std::size_t max_execute_rows = 1u << 20;
};

/// \brief The server. Construct over a fully-registered engine, Start(),
/// Stop() (or destroy) to shut down. Thread-safe handle.
class QueryServer {
 public:
  /// `engine` must outlive the server and have every table registered —
  /// registration is not safe against in-flight queries, and the server
  /// starts serving queries immediately.
  explicit QueryServer(QueryEngine* engine, ServerOptions options = {});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens and spawns the accept thread. kIoError on bind/listen
  /// failure (e.g. port in use).
  Status Start();

  /// Stops accepting, wakes every connection (shutdown(2) on its socket),
  /// joins all threads. Idempotent; called by the destructor.
  void Stop();

  /// The bound port (after Start) — the way to reach an ephemeral-port
  /// server in tests.
  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Introspection for tests and the METRICS verb.
  PlanCache& plan_cache() { return plan_cache_; }
  ResultCache& result_cache() { return result_cache_; }
  TenantQuotas& quotas() { return quotas_; }
  std::size_t active_connections() const;

 private:
  struct Connection;

  void AcceptLoop();
  void ConnectionLoop(Connection* conn);
  /// Joins connections whose loop has finished (called from the accept
  /// loop, so the connection list stays bounded on long uptimes).
  void ReapFinished();

  /// One request frame -> one response frame. Never throws; never closes
  /// the connection (the loop owns that decision).
  /// Protocol-level failures come back as error frames.
  JsonValue HandleRequest(Connection* conn, const std::string& line);

  JsonValue HandleHello(Connection* conn, const JsonValue& req);
  JsonValue HandlePrepare(Connection* conn, const JsonValue& req);
  JsonValue HandleOpen(Connection* conn, const JsonValue& req);
  JsonValue HandleNext(Connection* conn, const JsonValue& req);
  JsonValue HandleCancel(Connection* conn, const JsonValue& req);
  JsonValue HandleClose(Connection* conn, const JsonValue& req);
  JsonValue HandleExecute(Connection* conn, const JsonValue& req);
  JsonValue HandleMetrics(Connection* conn, const JsonValue& req);

  QueryEngine* const engine_;
  const ServerOptions options_;

  PlanCache plan_cache_;
  ResultCache result_cache_;
  TenantQuotas quotas_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;

  mutable std::mutex conns_mu_;
  std::list<std::unique_ptr<Connection>> conns_;
};

}  // namespace queryer

#endif  // QUERYER_SERVER_QUERY_SERVER_H_
