#include "server/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace queryer {

namespace {

// Frames are protocol-sized, not documents; 64 nested levels is far beyond
// anything the verbs produce and keeps malicious input from blowing the
// parser's stack.
constexpr int kMaxDepth = 64;

}  // namespace

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray(Array items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(Object members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

JsonValue JsonValue::Raw(std::string serialized) {
  JsonValue v;
  v.kind_ = Kind::kRaw;
  v.string_ = std::move(serialized);
  return v;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& m : object_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue value) {
  kind_ = Kind::kObject;
  object_.emplace_back(std::move(key), std::move(value));
}

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += static_cast<char>(c);
        }
    }
  }
}

void JsonValue::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber: {
      if (std::isfinite(number_) && number_ == std::floor(number_) &&
          std::fabs(number_) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
        *out += buf;
      } else if (std::isfinite(number_)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
        *out += buf;
      } else {
        *out += "null";  // JSON has no Inf/NaN.
      }
      break;
    }
    case Kind::kString:
      *out += '"';
      AppendJsonEscaped(string_, out);
      *out += '"';
      break;
    case Kind::kArray: {
      *out += '[';
      bool first = true;
      for (const JsonValue& item : array_) {
        if (!first) *out += ',';
        first = false;
        item.DumpTo(out);
      }
      *out += ']';
      break;
    }
    case Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const Member& m : object_) {
        if (!first) *out += ',';
        first = false;
        *out += '"';
        AppendJsonEscaped(m.first, out);
        *out += "\":";
        m.second.DumpTo(out);
      }
      *out += '}';
      break;
    }
    case Kind::kRaw:
      *out += string_;
      break;
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

// ---------------------------------------------------------------------------
// Parser: recursive descent over a string_view cursor.
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Run() {
    JsonValue v;
    QUERYER_RETURN_NOT_OK(ParseValue(&v, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Error(std::string what) {
    return Status::ParseError("json: " + std::move(what) + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        QUERYER_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue::Str(std::move(s));
        return Status::OK();
      }
      case 't':
        if (ConsumeWord("true")) {
          *out = JsonValue::Bool(true);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'f':
        if (ConsumeWord("false")) {
          *out = JsonValue::Bool(false);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'n':
        if (ConsumeWord("null")) {
          *out = JsonValue::Null();
          return Status::OK();
        }
        return Error("invalid literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
        return Error("unexpected character");
    }
  }

  Status ParseNumber(JsonValue* out) {
    std::size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() || !std::isdigit(UChar())) {
      return Error("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // No leading zeros.
    } else {
      while (pos_ < text_.size() && std::isdigit(UChar())) ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || !std::isdigit(UChar())) {
        return Error("invalid number");
      }
      while (pos_ < text_.size() && std::isdigit(UChar())) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit(UChar())) {
        return Error("invalid number");
      }
      while (pos_ < text_.size() && std::isdigit(UChar())) ++pos_;
    }
    // The grammar above admits exactly what strtod parses, and the slice is
    // not NUL-terminated, so copy before converting.
    std::string num(text_.substr(start, pos_ - start));
    *out = JsonValue::Number(std::strtod(num.c_str(), nullptr));
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      unsigned char c = UChar();
      ++pos_;
      if (c == '"') return Status::OK();
      if (c < 0x20) return Error("raw control character in string");
      if (c != '\\') {
        *out += static_cast<char>(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          unsigned cp = 0;
          QUERYER_RETURN_NOT_OK(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the paired \uDC00..\uDFFF.
            if (!ConsumeWord("\\u")) return Error("unpaired surrogate");
            unsigned lo = 0;
            QUERYER_RETURN_NOT_OK(ParseHex4(&lo));
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Error("unpaired surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
  }

  Status ParseHex4(unsigned* out) {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) return Error("truncated \\u escape");
      char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    JsonValue::Array items;
    SkipWhitespace();
    if (Consume(']')) {
      *out = JsonValue::MakeArray();
      return Status::OK();
    }
    while (true) {
      JsonValue item;
      QUERYER_RETURN_NOT_OK(ParseValue(&item, depth + 1));
      items.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) break;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
    *out = JsonValue::MakeArray(std::move(items));
    return Status::OK();
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    JsonValue::Object members;
    SkipWhitespace();
    if (Consume('}')) {
      *out = JsonValue::MakeObject();
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      QUERYER_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      QUERYER_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) break;
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
    *out = JsonValue::MakeObject(std::move(members));
    return Status::OK();
  }

  unsigned char UChar() const { return static_cast<unsigned char>(text_[pos_]); }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace queryer
