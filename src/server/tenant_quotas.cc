#include "server/tenant_quotas.h"

#include <cctype>

#include "obs/metrics.h"

namespace queryer {

namespace {

std::string SanitizeTenant(const std::string& tenant) {
  std::string out;
  out.reserve(tenant.size());
  for (char c : tenant) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  return out.empty() ? "_" : out;
}

}  // namespace

TenantQuotas::TenantQuotas(std::size_t per_tenant_limit)
    : limit_(per_tenant_limit) {}

TenantQuotas::State& TenantQuotas::StateFor(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    State state;
    state.shed = MetricsRegistry::Global().GetCounter(
        "queryer_server_tenant_shed_total_" + SanitizeTenant(tenant));
    it = tenants_.emplace(tenant, state).first;
  }
  return it->second;
}

bool TenantQuotas::TryAcquire(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  State& state = StateFor(tenant);
  if (limit_ != 0 && state.in_use >= limit_) {
    state.shed->Increment();
    GlobalServerMetrics().requests_shed->Increment();
    return false;
  }
  ++state.in_use;
  return true;
}

void TenantQuotas::Release(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it != tenants_.end() && it->second.in_use > 0) --it->second.in_use;
}

std::size_t TenantQuotas::InUse(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.in_use;
}

}  // namespace queryer
