// TenantQuotas: per-tenant admission bookkeeping for the query server.
//
// Engine admission (EngineOptions::max_concurrent_queries) bounds the TOTAL
// number of concurrent sessions; it is tenant-blind, so one aggressive
// tenant could occupy every slot and starve the rest. The server therefore
// charges each session (open wire cursor or in-flight EXECUTE) against its
// tenant's quota (EngineOptions::max_concurrent_per_tenant) BEFORE touching
// engine admission: an over-quota request is shed immediately with
// kResourceExhausted — it never queued, never held an engine slot, never
// claimed an entity. Under-quota tenants keep being admitted regardless of
// how hard an over-quota tenant hammers the server, which is the fairness
// property tests/server_test.cc pins down.
//
// This is counting, not queueing, on purpose: a shed is instant and cheap,
// and the client retries. Every shed increments the global
// queryer_server_requests_shed_total plus a per-tenant counter
// queryer_server_tenant_shed_total_<tenant> (tenant id sanitized to
// [A-Za-z0-9_]), registered dynamically at first sight of the tenant.

#ifndef QUERYER_SERVER_TENANT_QUOTAS_H_
#define QUERYER_SERVER_TENANT_QUOTAS_H_

#include <cstddef>
#include <map>
#include <mutex>
#include <string>

namespace queryer {

class Counter;

/// \brief Thread-safe per-tenant session counters. One instance per server.
class TenantQuotas {
 public:
  /// `per_tenant_limit` = EngineOptions::max_concurrent_per_tenant;
  /// 0 = unlimited (TryAcquire always succeeds, but usage is still
  /// tracked so METRICS can report it).
  explicit TenantQuotas(std::size_t per_tenant_limit);

  /// Charges one session to `tenant`. False = over quota; the shed was
  /// counted and nothing is held (do not Release).
  bool TryAcquire(const std::string& tenant);

  /// Returns one session of `tenant`. Must pair with a successful
  /// TryAcquire.
  void Release(const std::string& tenant);

  std::size_t InUse(const std::string& tenant) const;
  std::size_t limit() const { return limit_; }

 private:
  struct State {
    std::size_t in_use = 0;
    Counter* shed = nullptr;  // queryer_server_tenant_shed_total_<tenant>.
  };

  State& StateFor(const std::string& tenant);

  const std::size_t limit_;
  mutable std::mutex mu_;
  std::map<std::string, State> tenants_;
};

}  // namespace queryer

#endif  // QUERYER_SERVER_TENANT_QUOTAS_H_
