#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace queryer {

StatusCode StatusCodeFromString(std::string_view name) {
  static constexpr StatusCode kCodes[] = {
      StatusCode::kOk,             StatusCode::kInvalidArgument,
      StatusCode::kNotFound,       StatusCode::kAlreadyExists,
      StatusCode::kOutOfRange,     StatusCode::kIoError,
      StatusCode::kParseError,     StatusCode::kPlanError,
      StatusCode::kExecutionError, StatusCode::kInternal,
      StatusCode::kNotImplemented, StatusCode::kCancelled,
      StatusCode::kDeadlineExceeded, StatusCode::kResourceExhausted,
      StatusCode::kCorruption,
  };
  for (StatusCode code : kCodes) {
    if (StatusCodeToString(code) == name) return code;
  }
  return StatusCode::kInternal;
}

Result<Client> Client::Connect(const std::string& host, std::uint16_t port,
                               const std::string& tenant) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::IoError("connect " + host + ":" +
                                std::to_string(port) + ": " +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  Client client;
  client.fd_ = fd;
  client.tenant_ = tenant;

  JsonValue hello;
  hello.Set("op", JsonValue::Str("HELLO"));
  hello.Set("tenant", JsonValue::Str(tenant));
  auto response = client.Call(hello);
  if (!response.ok()) return response.status();
  return client;
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      tenant_(std::move(other.tenant_)),
      inbuf_(std::move(other.inbuf_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Disconnect();
    fd_ = other.fd_;
    tenant_ = std::move(other.tenant_);
    inbuf_ = std::move(other.inbuf_);
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() { Disconnect(); }

void Client::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
}

Status Client::WriteFrame(const JsonValue& frame) {
  if (fd_ < 0) return Status::IoError("not connected");
  std::string line;
  frame.DumpTo(&line);
  line += '\n';
  std::size_t off = 0;
  while (off < line.size()) {
    ssize_t n = ::send(fd_, line.data() + off, line.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    if (n == 0) return Status::IoError("connection closed mid-write");
    off += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Result<JsonValue> Client::ReadFrame() {
  if (fd_ < 0) return Status::IoError("not connected");
  char chunk[64 * 1024];
  for (;;) {
    std::size_t nl = inbuf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = inbuf_.substr(0, nl);
      inbuf_.erase(0, nl + 1);
      return JsonValue::Parse(line);
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IoError("connection closed by server");
    }
    inbuf_.append(chunk, static_cast<std::size_t>(n));
  }
}

Result<JsonValue> Client::Call(const JsonValue& request) {
  QUERYER_RETURN_NOT_OK(WriteFrame(request));
  QUERYER_ASSIGN_OR_RETURN(JsonValue response, ReadFrame());
  const JsonValue* ok = response.Find("ok");
  if (ok != nullptr && ok->is_bool() && ok->bool_value()) return response;

  // Error frame: map the wire code back onto the Status taxonomy.
  const JsonValue* error = response.Find("error");
  if (error != nullptr) {
    const JsonValue* code = error->Find("code");
    const JsonValue* message = error->Find("message");
    return Status(
        StatusCodeFromString(code != nullptr ? code->string_value() : ""),
        message != nullptr ? message->string_value() : "server error");
  }
  return Status::Internal("malformed response frame: " + response.Dump());
}

Result<std::uint64_t> Client::Prepare(const std::string& sql) {
  JsonValue req;
  req.Set("op", JsonValue::Str("PREPARE"));
  req.Set("sql", JsonValue::Str(sql));
  QUERYER_ASSIGN_OR_RETURN(JsonValue response, Call(req));
  const JsonValue* stmt = response.Find("stmt");
  if (stmt == nullptr || !stmt->is_number()) {
    return Status::Internal("PREPARE response missing stmt");
  }
  return static_cast<std::uint64_t>(stmt->number_value());
}

Result<Client::OpenInfo> Client::ParseOpenInfo(const JsonValue& frame) {
  const JsonValue* cursor = frame.Find("cursor");
  if (cursor == nullptr || !cursor->is_number()) {
    return Status::Internal("OPEN response missing cursor");
  }
  OpenInfo info;
  info.cursor = static_cast<std::uint64_t>(cursor->number_value());
  const JsonValue* columns = frame.Find("columns");
  if (columns != nullptr && columns->is_array()) {
    for (const JsonValue& c : columns->array()) {
      info.columns.push_back(c.string_value());
    }
  }
  return info;
}

Result<Client::OpenInfo> Client::Open(const std::string& sql) {
  JsonValue req;
  req.Set("op", JsonValue::Str("OPEN"));
  req.Set("sql", JsonValue::Str(sql));
  QUERYER_ASSIGN_OR_RETURN(JsonValue response, Call(req));
  return ParseOpenInfo(response);
}

Result<Client::OpenInfo> Client::OpenPrepared(std::uint64_t stmt) {
  JsonValue req;
  req.Set("op", JsonValue::Str("OPEN"));
  req.Set("stmt", JsonValue::Uint(stmt));
  QUERYER_ASSIGN_OR_RETURN(JsonValue response, Call(req));
  return ParseOpenInfo(response);
}

Result<Client::Page> Client::Next(std::uint64_t cursor, std::size_t n) {
  JsonValue req;
  req.Set("op", JsonValue::Str("NEXT"));
  req.Set("cursor", JsonValue::Uint(cursor));
  if (n > 0) req.Set("n", JsonValue::Uint(n));
  QUERYER_ASSIGN_OR_RETURN(JsonValue response, Call(req));
  Page page;
  const JsonValue* rows = response.Find("rows");
  if (rows != nullptr && rows->is_array()) {
    page.rows.reserve(rows->array().size());
    for (const JsonValue& row : rows->array()) {
      std::vector<std::string> cells;
      if (row.is_array()) {
        cells.reserve(row.array().size());
        for (const JsonValue& cell : row.array()) {
          cells.push_back(cell.string_value());
        }
      }
      page.rows.push_back(std::move(cells));
    }
  }
  const JsonValue* done = response.Find("done");
  page.done = done != nullptr && done->bool_value();
  return page;
}

Status Client::Cancel(std::uint64_t cursor) {
  JsonValue req;
  req.Set("op", JsonValue::Str("CANCEL"));
  req.Set("cursor", JsonValue::Uint(cursor));
  return Call(req).status();
}

Status Client::Close(std::uint64_t cursor) {
  JsonValue req;
  req.Set("op", JsonValue::Str("CLOSE"));
  req.Set("cursor", JsonValue::Uint(cursor));
  return Call(req).status();
}

Result<Client::ExecuteInfo> Client::Execute(const std::string& sql) {
  JsonValue req;
  req.Set("op", JsonValue::Str("EXECUTE"));
  req.Set("sql", JsonValue::Str(sql));
  QUERYER_ASSIGN_OR_RETURN(JsonValue response, Call(req));
  ExecuteInfo info;
  const JsonValue* columns = response.Find("columns");
  if (columns != nullptr && columns->is_array()) {
    for (const JsonValue& c : columns->array()) {
      info.columns.push_back(c.string_value());
    }
  }
  const JsonValue* rows = response.Find("rows");
  if (rows != nullptr && rows->is_array()) {
    info.rows.reserve(rows->array().size());
    for (const JsonValue& row : rows->array()) {
      std::vector<std::string> cells;
      if (row.is_array()) {
        for (const JsonValue& cell : row.array()) {
          cells.push_back(cell.string_value());
        }
      }
      info.rows.push_back(std::move(cells));
    }
  }
  const JsonValue* cached = response.Find("cached");
  info.cached = cached != nullptr && cached->bool_value();
  const JsonValue* stats = response.Find("stats");
  if (stats != nullptr) {
    const JsonValue* comparisons = stats->Find("comparisons_executed");
    if (comparisons != nullptr && comparisons->is_number()) {
      info.comparisons_executed =
          static_cast<std::uint64_t>(comparisons->number_value());
    }
  }
  return info;
}

Result<std::string> Client::Metrics() {
  JsonValue req;
  req.Set("op", JsonValue::Str("METRICS"));
  QUERYER_ASSIGN_OR_RETURN(JsonValue response, Call(req));
  const JsonValue* metrics = response.Find("metrics");
  if (metrics == nullptr) {
    return Status::Internal("METRICS response missing metrics");
  }
  return metrics->Dump();
}

}  // namespace queryer
