#include "server/plan_cache.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "engine/query_engine.h"
#include "obs/metrics.h"

namespace queryer {

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

std::string PlanCache::MakeKey(const std::string& sql,
                               std::uint64_t version) {
  // The version prefix is fixed-width decimal, so no SQL text can collide
  // with another version's key.
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%020llu|",
                static_cast<unsigned long long>(version));
  return buf + sql;
}

Result<PlanCache::Lookup> PlanCache::GetOrPrepare(QueryEngine& engine,
                                                  const std::string& sql) {
  const ServerMetrics& metrics = GlobalServerMetrics();
  std::string key = MakeKey(sql, engine.catalog_version());

  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    metrics.plan_cache_hits->Increment();
    return Lookup{it->second->plan, /*hit=*/true};
  }

  metrics.plan_cache_misses->Increment();
  auto prepared = engine.Prepare(sql);
  if (!prepared.ok()) return prepared.status();
  auto plan = std::make_shared<const PreparedQuery>(
      std::move(prepared).MoveValueUnsafe());

  lru_.push_front(Entry{key, plan});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return Lookup{std::move(plan), /*hit=*/false};
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace queryer
