// QueryEngine: the public facade of QueryER.
//
//   QueryEngine engine;
//   engine.RegisterTable(my_table);                  // or RegisterCsvFile
//   auto result = engine.Execute(
//       "SELECT DEDUP p.title, v.rank FROM p "
//       "INNER JOIN v ON p.venue = v.title WHERE p.venue = 'EDBT'");
//
// The engine owns the catalog, the per-table ER runtimes (Table Block Index
// + Link Index, built once-off), the statistics cache of the cost-based
// planner, and the execution-mode switch that selects between the Batch
// Approach baseline and the Naive/Advanced ER solutions of the paper.

#ifndef QUERYER_ENGINE_QUERY_ENGINE_H_
#define QUERYER_ENGINE_QUERY_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/exec_stats.h"
#include "exec/executor.h"
#include "exec/row_batch.h"
#include "exec/table_runtime.h"
#include "parallel/thread_pool.h"
#include "planner/planner.h"
#include "planner/statistics.h"
#include "sql/parser.h"
#include "storage/catalog.h"
#include "storage/csv.h"

namespace queryer {

/// \brief How DEDUP queries are evaluated.
enum class ExecutionMode {
  /// Batch Approach (BA): fully deduplicate every involved table first,
  /// then answer the query. The paper's baseline.
  kBatch,
  /// Naive ER Solution (NES): Deduplicate directly above each Table Scan.
  kNaive,
  /// Naive ER plan 2: Deduplicate above each Filter.
  kNaive2,
  /// Advanced ER Solution (AES): cost-based operator placement.
  kAdvanced,
};

std::string_view ExecutionModeToString(ExecutionMode mode);

/// \brief Engine-wide configuration. Blocking/meta-blocking/matching apply
/// to tables registered afterwards.
struct EngineOptions {
  BlockingOptions blocking;
  MetaBlockingConfig meta_blocking;
  MatchingConfig matching;
  ExecutionMode mode = ExecutionMode::kAdvanced;
  /// When false, resolved links are forgotten before every DEDUP query —
  /// the "Without LI" arm of the paper's Fig. 11.
  bool use_link_index = true;
  /// When true, every ER operator appends its surviving comparisons to the
  /// result stats (for Pair Completeness measurement).
  bool collect_comparisons = false;
  /// Worker threads for the data-parallel phases (comparison execution,
  /// once-off index construction). 0 = hardware concurrency; 1 = fully
  /// sequential execution (no pool — identical to the pre-parallel engine).
  /// Query answers and LinkIndex::num_links() are identical across thread
  /// counts; only the executed/skipped comparison split may vary. Engines
  /// with num_threads > 1 draw their workers from the process-wide shared
  /// pool (ThreadPool::Shared), not a private one.
  std::size_t num_threads = 1;
  /// Maximum number of Execute/Explain calls admitted simultaneously.
  /// 1 (default) serializes queries — exactly the single-client engine,
  /// merely made safe to call from any thread. Values > 1 admit that many
  /// concurrent query sessions, which then resolve through the Link
  /// Index's reader/writer protocol and the per-table resolution
  /// coordinator (entity claims + comparison-dedup table). 0 = unlimited.
  std::size_t max_concurrent_queries = 1;
  /// RowBatch capacity of the batch execution pipeline: how many rows flow
  /// through one Next(RowBatch*) call. Also the morsel granularity of
  /// parallel table scans. Query answers are identical for every value;
  /// tiny values only add per-batch overhead. Clamped to at least 1.
  std::size_t batch_size = kDefaultBatchSize;
};

/// \brief A materialized query answer plus its execution statistics.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  ExecStats stats;
  std::string plan_text;
};

/// \brief The QueryER engine.
///
/// Thread-safety: Execute and Explain may be called from any number of
/// client threads once every table is registered. Admission is bounded by
/// EngineOptions::max_concurrent_queries; admitted sessions share the Link
/// Index through its reader/writer protocol and split resolution work via
/// the per-table ResolutionCoordinator: every entity is resolved exactly
/// once (in claim order) and no comparison runs twice in flight, so the
/// execution is equivalent to a serial interleaving of the same queries —
/// each answer is one that some serial schedule produces, and the final link
/// set matches that schedule's. Queries whose answers depend on the serial
/// ORDER (overlapping selections whose meta-blocking prunes differently
/// per order) are order-sensitive serially and stay so concurrently.
/// Registration (RegisterTable/RegisterCsvFile) and the setters are NOT
/// safe against in-flight queries — finish setup first.
class QueryEngine {
 public:
  explicit QueryEngine(EngineOptions options = {});

  /// Registers an in-memory table. Fails on duplicate names.
  Status RegisterTable(TablePtr table);

  /// Loads a CSV file as a table named `table_name`.
  Status RegisterCsvFile(const std::string& path, std::string table_name);

  /// Parses, plans and executes one SELECT statement. Safe to call
  /// concurrently (see the class comment).
  Result<QueryResult> Execute(const std::string& sql);

  /// Returns the logical plan the current mode would execute.
  Result<std::string> Explain(const std::string& sql);

  /// Eagerly builds the once-off indices of a table (otherwise they are
  /// built on first use).
  Status WarmIndices(const std::string& table_name);

  Result<std::shared_ptr<TableRuntime>> GetRuntime(
      const std::string& table_name);

  const Catalog& catalog() const { return catalog_; }
  StatisticsCache& statistics() { return *statistics_; }

  /// Effective worker count (1 when running sequentially).
  std::size_t num_threads() const {
    return pool_ == nullptr ? 1 : pool_->num_threads();
  }
  /// The engine's pool; null when running sequentially.
  ThreadPool* thread_pool() { return pool_.get(); }

  ExecutionMode mode() const { return options_.mode; }
  void set_mode(ExecutionMode mode) { options_.mode = mode; }
  /// Setters are registration-time only (no query may be in flight).
  /// Disabling the Link Index serializes admission: that arm resets the
  /// index per query, which cannot overlap other sessions.
  void set_use_link_index(bool use) {
    options_.use_link_index = use;
    if (!use && options_.max_concurrent_queries != 1) {
      options_.max_concurrent_queries = 1;
      admission_ = std::make_unique<Semaphore>(1);
    }
  }
  void set_collect_comparisons(bool collect) {
    options_.collect_comparisons = collect;
  }

 private:
  Result<SelectStatement> Parse(const std::string& sql) const;
  Result<std::vector<std::shared_ptr<TableRuntime>>> InvolvedRuntimes(
      const SelectStatement& stmt);
  PlannerMode PlannerModeFor(ExecutionMode mode) const;

  /// True when the engine may admit overlapping query sessions, which is
  /// when the operators must use the concurrent resolution protocol.
  bool concurrent_sessions() const {
    return options_.max_concurrent_queries != 1;
  }

  EngineOptions options_;
  // Handle on the process-wide shared pool (ThreadPool::Shared); also given
  // to every TableRuntime, which may outlive the engine via GetRuntime
  // handles.
  std::shared_ptr<ThreadPool> pool_;
  Catalog catalog_;
  RuntimeRegistry runtimes_;
  // Behind unique_ptrs: both hold synchronization primitives, and the
  // engine itself must stay movable (move it only while no query is in
  // flight).
  std::unique_ptr<StatisticsCache> statistics_;
  // Admission control for concurrent Execute calls.
  std::unique_ptr<Semaphore> admission_;
};

}  // namespace queryer

#endif  // QUERYER_ENGINE_QUERY_ENGINE_H_
