// QueryEngine: the public facade of QueryER.
//
//   QueryEngine engine;
//   engine.RegisterTable(my_table);                  // or RegisterCsvFile
//
//   // One-shot materialized answer:
//   auto result = engine.Execute(
//       "SELECT DEDUP p.title, v.rank FROM p "
//       "INNER JOIN v ON p.venue = v.title WHERE p.venue = 'EDBT'");
//
//   // Streaming: batches arrive as soon as the relevant entities are
//   // resolved; abandon early and pay only for what you consumed.
//   auto prepared = engine.Prepare(sql);             // Parse + plan once.
//   auto cursor = prepared->Open();                  // Or ExecuteStream(sql).
//   RowBatch batch((*cursor)->batch_size());
//   while (true) {
//     auto has = (*cursor)->Next(&batch);            // Result<bool>.
//     if (!has.ok() || !*has) break;                 // Error / end of stream.
//     ...use batch...
//   }
//
// The engine owns the catalog, the per-table ER runtimes (Table Block Index
// + Link Index, built once-off), the statistics cache of the cost-based
// planner, and the execution-mode switch that selects between the Batch
// Approach baseline and the Naive/Advanced ER solutions of the paper.
// Execute is a thin wrapper that opens a cursor and materializes it, so
// every query — one-shot or streaming — takes the same path.

#ifndef QUERYER_ENGINE_QUERY_ENGINE_H_
#define QUERYER_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine_options.h"
#include "engine/prepared_query.h"
#include "engine/query_cursor.h"
#include "exec/exec_stats.h"
#include "exec/executor.h"
#include "exec/row_batch.h"
#include "exec/table_runtime.h"
#include "parallel/thread_pool.h"
#include "planner/planner.h"
#include "planner/statistics.h"
#include "sql/parser.h"
#include "storage/catalog.h"
#include "storage/csv.h"

namespace queryer {

class DurableLinkIndex;

/// \brief The QueryER engine.
///
/// Thread-safety: Prepare, Execute, ExecuteStream and Explain may be called
/// from any number of client threads once every table is registered.
/// Admission is bounded by EngineOptions::max_concurrent_queries — an open
/// QueryCursor counts as one admitted session for its whole lifetime, so at
/// max_concurrent_queries == 1 a second session (including one opened by
/// the same thread) blocks until the first cursor closes. Admitted sessions
/// share the Link Index through its reader/writer protocol and split
/// resolution work via the per-table ResolutionCoordinator: every entity is
/// resolved exactly once (in claim order) and no comparison runs twice in
/// flight, so the execution is equivalent to a serial interleaving of the
/// same queries — each answer is one that some serial schedule produces,
/// and the final link set matches that schedule's. Queries whose answers
/// depend on the serial ORDER (overlapping selections whose meta-blocking
/// prunes differently per order) are order-sensitive serially and stay so
/// concurrently.
/// Registration (RegisterTable/RegisterCsvFile) and the setters are NOT
/// safe against in-flight queries — finish setup first.
class QueryEngine {
 public:
  explicit QueryEngine(EngineOptions options = {});

  /// Registers an in-memory table. Fails on duplicate names.
  Status RegisterTable(TablePtr table);

  /// Loads a CSV file as a table named `table_name`.
  Status RegisterCsvFile(const std::string& path, std::string table_name);

  /// Registers a table from its snapshots under EngineOptions::data_dir
  /// (written by an earlier SaveSnapshot): the mmap-backed table from
  /// `<name>.tbl`, the block index + attribute weights from `<name>.tbi`
  /// when present (WarmIndices then rebuilds nothing), and the durable
  /// Link Index from `<name>.li`/`<name>.lilog` like every registration.
  /// Fails with kNotFound when the table snapshot is missing, kCorruption
  /// when any file is damaged.
  Status RegisterTableFromSnapshots(const std::string& table_name);

  /// Writes `<name>.tbl` + `<name>.tbi` under data_dir (warming the
  /// indices first if needed) and compacts the durable link log. Requires
  /// EngineOptions::data_dir. No query may be in flight (snapshotting
  /// reads the runtime's configuration like the setters do).
  Status SaveSnapshot(const std::string& table_name);

  /// SaveSnapshot for every registered table.
  Status SaveSnapshots();

  /// Parses and plans one SELECT statement, capturing the current mode and
  /// options. The returned query can be inspected (plan_text) and opened
  /// any number of times; it must not outlive the engine. Does not take an
  /// admission slot — planning is thread-safe — so preparing while one of
  /// your own cursors is open never blocks.
  Result<PreparedQuery> Prepare(const std::string& sql);

  /// Prepare + PreparedQuery::Open in one call: a streaming cursor over
  /// the statement's answer. Blocks while the engine is at
  /// max_concurrent_queries (an open cursor holds its slot until closed).
  Result<CursorPtr> ExecuteStream(const std::string& sql);

  /// Parses, plans and executes one SELECT statement, materializing the
  /// whole answer. A thin wrapper over ExecuteStream — the streaming
  /// cursor is the only drain path. Safe to call concurrently (see the
  /// class comment).
  ///
  /// `EXPLAIN SELECT ...` statements execute nothing and return the static
  /// plan as rows (one line per row, single "QUERY PLAN" column).
  /// `EXPLAIN ANALYZE SELECT ...` statements execute the query in full,
  /// discard its answer, and return the plan annotated with per-operator
  /// cardinalities and self-times plus the ExecStats ER-stage breakdown.
  Result<QueryResult> Execute(const std::string& sql);

  /// Returns the logical plan the current mode would execute. When `sql`
  /// is prefixed with `EXPLAIN ANALYZE`, the statement is executed (one
  /// admitted session, answer discarded) and the annotated plan comes
  /// back instead — per-operator rows/batches/self-time plus the stats
  /// summary.
  Result<std::string> Explain(const std::string& sql);

  /// Eagerly builds the once-off indices of a table (otherwise they are
  /// built on first use).
  Status WarmIndices(const std::string& table_name);

  Result<std::shared_ptr<TableRuntime>> GetRuntime(
      const std::string& table_name);

  const Catalog& catalog() const { return catalog_; }
  StatisticsCache& statistics() { return *statistics_; }

  /// The options this engine was constructed with (post-normalization —
  /// e.g. the without-LI arm forces max_concurrent_queries to 1). The
  /// query server reads its tenant quota and admission settings here.
  const EngineOptions& options() const { return options_; }

  /// Monotonic registration counter: bumped by every successful
  /// RegisterTable / RegisterCsvFile / RegisterTableFromSnapshots. The
  /// server's prepared-plan and result caches key on it, so a plan or
  /// answer cached against an older catalog can never be served after a
  /// registration changes what a name resolves to.
  std::uint64_t catalog_version() const {
    return catalog_version_->load(std::memory_order_acquire);
  }

  /// Effective worker count (1 when running sequentially).
  std::size_t num_threads() const {
    return pool_ == nullptr ? 1 : pool_->num_threads();
  }
  /// The engine's pool; null when running sequentially.
  ThreadPool* thread_pool() { return pool_.get(); }

  ExecutionMode mode() const { return options_.mode; }
  void set_mode(ExecutionMode mode) { options_.mode = mode; }
  /// Setters are registration-time only (no query may be in flight), and
  /// do not affect already-prepared queries (options are captured at
  /// Prepare time). Disabling the Link Index serializes admission: that
  /// arm resets the index per query, which cannot overlap other sessions.
  void set_use_link_index(bool use) {
    options_.use_link_index = use;
    if (!use && options_.max_concurrent_queries != 1) {
      options_.max_concurrent_queries = 1;
      // Reset in place, never replace: an open cursor holds a pointer to
      // this semaphore (calling a setter with a session in flight is
      // forbidden anyway, but a stale pointer must not dangle).
      admission_->Reset(1);
    }
  }
  void set_collect_comparisons(bool collect) {
    options_.collect_comparisons = collect;
  }
  /// Per-session deadline (seconds; 0 = none) for queries prepared from
  /// now on. Same between-queries-only contract as the other setters.
  void set_default_query_deadline(double seconds) {
    options_.default_query_deadline = seconds;
  }
  /// Bounded-admission timeout (seconds; 0 = wait indefinitely) for
  /// queries prepared from now on; see EngineOptions::admission_timeout.
  void set_admission_timeout(double seconds) {
    options_.admission_timeout = seconds;
  }

 private:
  friend class PreparedQuery;

  Result<SelectStatement> Parse(const std::string& sql) const;
  Result<std::vector<std::shared_ptr<TableRuntime>>> InvolvedRuntimes(
      const SelectStatement& stmt);
  PlannerMode PlannerModeFor(ExecutionMode mode) const;

  /// The session factory behind PreparedQuery::Open / ExecuteStream:
  /// acquires an admission slot, runs the captured mode's ER prologue
  /// (BA cleaning / without-LI reset), lowers the prepared plan and opens
  /// the tree. On failure the slot is released before returning.
  Result<CursorPtr> OpenPrepared(const PreparedQuery& prepared);

  /// Recovers/creates the durable Link Index files for a freshly built
  /// runtime and attaches the sidecar. Only called when data_dir is set.
  Status AttachDurableLinkIndex(const std::string& table_name,
                                TableRuntime* runtime);

  /// `<data_dir>/<lowercased table name><suffix>`.
  std::string PersistPath(const std::string& table_name,
                          std::string_view suffix) const;

  /// The static (pre-execution) plan text of a prepared statement. The
  /// without-LI arm defers planning to Open; for it this plans under the
  /// current index state without side effects, like Explain always did.
  Result<std::string> StaticPlanText(const PreparedQuery& prepared);

  EngineOptions options_;
  // Handle on the process-wide shared pool (ThreadPool::Shared); also given
  // to every TableRuntime, which may outlive the engine via GetRuntime
  // handles.
  std::shared_ptr<ThreadPool> pool_;
  Catalog catalog_;
  RuntimeRegistry runtimes_;
  // Behind unique_ptrs: both hold synchronization primitives, and the
  // engine itself must stay movable (move it only while no query is in
  // flight and no PreparedQuery or QueryCursor is alive — both hold
  // pointers into this engine).
  std::unique_ptr<StatisticsCache> statistics_;
  // Admission control for concurrent query sessions.
  std::unique_ptr<Semaphore> admission_;
  // Typed handles on the durability sidecars (ownership shared with the
  // runtimes, which hold them type-erased), so SaveSnapshot can compact
  // explicitly. Keyed like runtimes_.
  std::map<std::string, std::shared_ptr<DurableLinkIndex>> durable_links_;
  // See catalog_version(). Behind a unique_ptr like the primitives above:
  // atomics are immovable and the engine must stay movable.
  std::unique_ptr<std::atomic<std::uint64_t>> catalog_version_ =
      std::make_unique<std::atomic<std::uint64_t>>(0);
};

}  // namespace queryer

#endif  // QUERYER_ENGINE_QUERY_ENGINE_H_
