// QueryEngine: the public facade of QueryER.
//
//   QueryEngine engine;
//   engine.RegisterTable(my_table);                  // or RegisterCsvFile
//   auto result = engine.Execute(
//       "SELECT DEDUP p.title, v.rank FROM p "
//       "INNER JOIN v ON p.venue = v.title WHERE p.venue = 'EDBT'");
//
// The engine owns the catalog, the per-table ER runtimes (Table Block Index
// + Link Index, built once-off), the statistics cache of the cost-based
// planner, and the execution-mode switch that selects between the Batch
// Approach baseline and the Naive/Advanced ER solutions of the paper.

#ifndef QUERYER_ENGINE_QUERY_ENGINE_H_
#define QUERYER_ENGINE_QUERY_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/exec_stats.h"
#include "exec/executor.h"
#include "exec/table_runtime.h"
#include "parallel/thread_pool.h"
#include "planner/planner.h"
#include "planner/statistics.h"
#include "sql/parser.h"
#include "storage/catalog.h"
#include "storage/csv.h"

namespace queryer {

/// \brief How DEDUP queries are evaluated.
enum class ExecutionMode {
  /// Batch Approach (BA): fully deduplicate every involved table first,
  /// then answer the query. The paper's baseline.
  kBatch,
  /// Naive ER Solution (NES): Deduplicate directly above each Table Scan.
  kNaive,
  /// Naive ER plan 2: Deduplicate above each Filter.
  kNaive2,
  /// Advanced ER Solution (AES): cost-based operator placement.
  kAdvanced,
};

std::string_view ExecutionModeToString(ExecutionMode mode);

/// \brief Engine-wide configuration. Blocking/meta-blocking/matching apply
/// to tables registered afterwards.
struct EngineOptions {
  BlockingOptions blocking;
  MetaBlockingConfig meta_blocking;
  MatchingConfig matching;
  ExecutionMode mode = ExecutionMode::kAdvanced;
  /// When false, resolved links are forgotten before every DEDUP query —
  /// the "Without LI" arm of the paper's Fig. 11.
  bool use_link_index = true;
  /// When true, every ER operator appends its surviving comparisons to the
  /// result stats (for Pair Completeness measurement).
  bool collect_comparisons = false;
  /// Worker threads for the data-parallel phases (comparison execution,
  /// once-off index construction). 0 = hardware concurrency; 1 = fully
  /// sequential execution (no pool — identical to the pre-parallel engine).
  /// Query answers and LinkIndex::num_links() are identical across thread
  /// counts; only the executed/skipped comparison split may vary.
  std::size_t num_threads = 1;
};

/// \brief A materialized query answer plus its execution statistics.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  ExecStats stats;
  std::string plan_text;
};

/// \brief The QueryER engine. Not thread-safe.
class QueryEngine {
 public:
  explicit QueryEngine(EngineOptions options = {});

  /// Registers an in-memory table. Fails on duplicate names.
  Status RegisterTable(TablePtr table);

  /// Loads a CSV file as a table named `table_name`.
  Status RegisterCsvFile(const std::string& path, std::string table_name);

  /// Parses, plans and executes one SELECT statement.
  Result<QueryResult> Execute(const std::string& sql);

  /// Returns the logical plan the current mode would execute.
  Result<std::string> Explain(const std::string& sql);

  /// Eagerly builds the once-off indices of a table (otherwise they are
  /// built on first use).
  Status WarmIndices(const std::string& table_name);

  Result<std::shared_ptr<TableRuntime>> GetRuntime(
      const std::string& table_name);

  const Catalog& catalog() const { return catalog_; }
  StatisticsCache& statistics() { return statistics_; }

  /// Effective worker count (1 when running sequentially).
  std::size_t num_threads() const {
    return pool_ == nullptr ? 1 : pool_->num_threads();
  }
  /// The engine's pool; null when running sequentially.
  ThreadPool* thread_pool() { return pool_.get(); }

  ExecutionMode mode() const { return options_.mode; }
  void set_mode(ExecutionMode mode) { options_.mode = mode; }
  void set_use_link_index(bool use) { options_.use_link_index = use; }
  void set_collect_comparisons(bool collect) {
    options_.collect_comparisons = collect;
  }

 private:
  Result<SelectStatement> Parse(const std::string& sql) const;
  Result<std::vector<std::shared_ptr<TableRuntime>>> InvolvedRuntimes(
      const SelectStatement& stmt);
  PlannerMode PlannerModeFor(ExecutionMode mode) const;

  EngineOptions options_;
  // Shared with every TableRuntime, which may outlive the engine via
  // GetRuntime handles.
  std::shared_ptr<ThreadPool> pool_;
  Catalog catalog_;
  RuntimeRegistry runtimes_;
  StatisticsCache statistics_;
};

}  // namespace queryer

#endif  // QUERYER_ENGINE_QUERY_ENGINE_H_
