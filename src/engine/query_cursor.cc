#include "engine/query_cursor.h"

#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace queryer {

// RAII check of the single-consumer contract at each consumer entry point.
// The CAS claims the cursor for the calling thread; a thread that finds it
// claimed by another is a contract violation — two threads concurrently
// inside Next/Fetch/Close — and aborts in debug builds. Finding it claimed
// by ITSELF is legal reentrancy (Fetch drives Next, the destructor drives
// Close), tracked by the depth counter.
class QueryCursor::ConsumerGuard {
 public:
  explicit ConsumerGuard(QueryCursor* cursor) : cursor_(cursor) {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};
    if (!cursor_->consumer_.compare_exchange_strong(
            expected, self, std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      QUERYER_DCHECK(expected == self &&
                     "QueryCursor is single-consumer: Next/Fetch/Close must "
                     "not race from two threads (Cancel is the only "
                     "any-thread entry point)");
    }
    ++cursor_->consumer_depth_;
  }

  ~ConsumerGuard() {
    if (--cursor_->consumer_depth_ == 0) {
      cursor_->consumer_.store(std::thread::id{}, std::memory_order_release);
    }
  }

  ConsumerGuard(const ConsumerGuard&) = delete;
  ConsumerGuard& operator=(const ConsumerGuard&) = delete;

 private:
  QueryCursor* cursor_;
};

QueryCursor::QueryCursor(Semaphore* admission,
                         std::vector<std::shared_ptr<TableRuntime>> runtimes,
                         std::shared_ptr<ThreadPool> pool,
                         std::shared_ptr<std::atomic<bool>> cancel,
                         std::unique_ptr<ExecStats> stats,
                         std::unique_ptr<PlanProfile> profile,
                         std::shared_ptr<TraceSink> trace, OperatorPtr root,
                         std::string plan_text, std::size_t batch_size,
                         std::uint64_t session_id, double deadline_seconds,
                         std::chrono::steady_clock::time_point opened_at)
    : admission_(admission),
      runtimes_(std::move(runtimes)),
      pool_(std::move(pool)),
      cancel_(std::move(cancel)),
      stats_(std::move(stats)),
      profile_(std::move(profile)),
      trace_(std::move(trace)),
      plan_text_(std::move(plan_text)),
      batch_size_(batch_size == 0 ? 1 : batch_size),
      session_id_(session_id),
      opened_at_(opened_at),
      root_(std::move(root)) {
  columns_ = root_->output_columns();
  if (deadline_seconds > 0) {
    has_deadline_ = true;
    deadline_ = opened_at_ + std::chrono::duration_cast<
                                 std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double>(
                                     deadline_seconds));
  }
}

QueryCursor::~QueryCursor() { Close(); }

void QueryCursor::ReleaseAdmission() {
  if (admission_ != nullptr) {
    admission_->Release();
    admission_ = nullptr;
  }
}

namespace {

// Folds one profile node's self time into the ExecStats relational buckets.
// Dedup-ish categories are skipped: their self time is already reported in
// the ER-stage seconds (blocking/resolution/group/...), and folding it here
// would double-count. Fused Filter+Scan pairs share one kScan node, so a
// fused predicate's time lands in scan_seconds — exactly where it ran.
void FoldProfile(const OperatorProfile& node, ExecStats* stats) {
  switch (node.category) {
    case OperatorCategory::kScan:
      stats->scan_seconds += node.self_seconds();
      break;
    case OperatorCategory::kFilter:
    case OperatorCategory::kGroupFilter:
      stats->filter_seconds += node.self_seconds();
      break;
    case OperatorCategory::kJoin:
      stats->join_seconds += node.self_seconds();
      break;
    case OperatorCategory::kProject:
      stats->project_seconds += node.self_seconds();
      break;
    case OperatorCategory::kDedup:
    case OperatorCategory::kDedupJoin:
    case OperatorCategory::kGroup:
    case OperatorCategory::kOther:
      break;
  }
  for (const auto& child : node.children) FoldProfile(*child, stats);
}

// Emits one Complete span per operator that ever ran, spanning its first to
// last activity (Open through the final Next/Close the consumer issued).
void EmitOperatorSpans(const OperatorProfile& node, TraceSink* trace) {
  if (node.opens > 0) {
    trace->Complete(node.label, "operator", node.first_activity,
                    node.last_activity,
                    "\"rows\":" + std::to_string(node.rows) +
                        ",\"batches\":" + std::to_string(node.batches));
  }
  for (const auto& child : node.children) EmitOperatorSpans(*child, trace);
}

}  // namespace

void QueryCursor::FinishObservation(const Status& status) {
  if (folded_) return;
  folded_ = true;
  if (profile_ != nullptr && profile_->root() != nullptr) {
    FoldProfile(*profile_->root(), stats_.get());
    if (trace_ != nullptr) {
      EmitOperatorSpans(*profile_->root(), trace_.get());
    }
  }
  if (trace_ != nullptr && emit_started_) {
    // The consumer-visible streaming window: first Next() to termination.
    trace_->Complete("emit", "session", first_next_,
                     std::chrono::steady_clock::now());
  }
  const EngineMetrics& metrics = GlobalEngineMetrics();
  if (finished_) {
    metrics.queries_executed->Increment();
  } else if (status.IsCancelled()) {
    metrics.queries_cancelled->Increment();
  } else if (status.IsDeadlineExceeded()) {
    metrics.queries_deadline_exceeded->Increment();
  } else if (status.ok()) {
    // Closed (or destroyed) mid-stream without an error: abandoned.
    metrics.queries_abandoned->Increment();
  } else {
    metrics.queries_failed->Increment();
  }
}

void QueryCursor::Terminate(Status status) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  TerminateLocked(std::move(status));
}

void QueryCursor::TerminateLocked(Status status) {
  if (!status.ok()) {
    // Terminal errors name their session — with concurrent sessions (and
    // injected chaos failures), the message alone says which query died.
    status = status.WithContext("session " + std::to_string(session_id_));
  }
  if (root_ != nullptr) {
    // Close cascades down the tree; TableScanOp / HashJoinOp cancel their
    // in-flight morsels through the ReorderWindow cancellation path, so
    // window-queued tasks stop materializing for this dead session. A tree
    // that never opened (lazy open not reached, or EnsureOpen failed) is
    // torn down by destructors alone — the DrainOperator contract: no
    // Close after a failed (or skipped) Open.
    if (tree_opened_) root_->Close();
    root_.reset();
  }
  if (!finished_) {
    // A finished stream already recorded its open → end-of-stream time.
    stats_->total_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      opened_at_)
            .count();
  }
  // After the tree closed (operators wrote their last profile entries),
  // before the slot frees: fold profiles into stats, flush trace spans,
  // count the session outcome. Runs once even though Terminate may not.
  FinishObservation(status);
  ReleaseAdmission();
  status_ = std::move(status);
}

void QueryCursor::Close() {
  ConsumerGuard guard(this);
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (closed_) return;
  closed_ = true;
  // Read the flag BEFORE raising it: a Cancel() that arrived before this
  // Close makes the session count as cancelled — but only when the stream
  // had not already finished (a Cancel after the last batch never turns
  // success into an error).
  const bool was_cancelled = cancel_->load(std::memory_order_acquire);
  if (status_.ok() && !finished_) {
    // Abandoned mid-stream: make sure straggler morsels see the session
    // die even if the client never called Cancel.
    cancel_->store(true, std::memory_order_release);
  }
  if (status_.ok()) {
    if (!finished_ && was_cancelled) {
      TerminateLocked(Status::Cancelled("query session cancelled"));
    } else {
      TerminateLocked(Status::OK());
    }
  }
  fetch_batch_.reset();
}

Status QueryCursor::CheckRunnable() {
  if (!status_.ok()) return status_;
  if (closed_) return Status::ExecutionError("cursor is closed");
  if (cancel_->load(std::memory_order_acquire)) {
    Terminate(Status::Cancelled("query session cancelled"));
    return status_;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    // Let the tree's morsels die with the session, like a cancellation.
    cancel_->store(true, std::memory_order_release);
    Terminate(Status::DeadlineExceeded("query deadline exceeded"));
    return status_;
  }
  return Status::OK();
}

Status QueryCursor::EnsureOpen() {
  // Open is where a DEDUP plan's whole resolution transaction runs; the
  // span makes that cost visible in the session trace, exactly as when
  // the engine opened the tree eagerly.
  TraceSpan open_span(trace_.get(), "open", "session");
  try {
    QUERYER_FAILPOINT("cursor.open");
    QUERYER_RETURN_NOT_OK(root_->Open());
  } catch (const std::exception& e) {
    return Status::Internal(e.what());
  } catch (...) {
    return Status::Internal("non-std exception during operator tree Open");
  }
  tree_opened_ = true;
  return Status::OK();
}

Result<bool> QueryCursor::Next(RowBatch* batch) {
  ConsumerGuard guard(this);
  // A finished stream stays finished: a Cancel() or deadline that fires
  // after the last batch was delivered must not turn success into error.
  if (finished_) return false;
  QUERYER_RETURN_NOT_OK(CheckRunnable());
  if (!tree_opened_) {
    // Lazy open: the heavy lifting (resolution, join build, ...) happens
    // inside the first Next, so its failure — injected or real — takes
    // the same terminate-and-stick path as a mid-stream error, and a
    // session cancelled before its first Next never starts it at all.
    Status opened = EnsureOpen();
    if (!opened.ok()) {
      Terminate(std::move(opened));
      return status_;
    }
  }
  if (!emit_started_ && trace_ != nullptr) {
    emit_started_ = true;
    first_next_ = std::chrono::steady_clock::now();
  }
  Result<bool> has = [&]() -> Result<bool> {
    try {
      QUERYER_FAILPOINT("cursor.next");
      return root_->Next(batch);
    } catch (const std::exception& e) {
      return Status::Internal(e.what());
    } catch (...) {
      return Status::Internal("non-std exception from operator Next");
    }
  }();
  if (!has.ok()) {
    Terminate(has.status());
    return status_;
  }
  if (!*has) {
    // End of stream — but a Cancel() that landed mid-pull truncates the
    // morsel stream silently (cancelled morsels come back empty), so
    // check the flag before declaring the answer complete. Only the
    // cancel flag, NOT the deadline: the deadline acts solely through
    // CheckRunnable, which terminates the stream on the spot, so it can
    // never truncate — a stream that reaches its end under a just-expired
    // deadline is complete and stays successful.
    if (cancel_->load(std::memory_order_acquire)) {
      Terminate(Status::Cancelled("query session cancelled"));
      return status_;
    }
    stats_->total_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      opened_at_)
            .count();
    finished_ = true;
    // The session is over: close the tree and release the admission slot
    // NOW, not at Close/destruction — a client that drains a cursor and
    // keeps the handle around (for stats, say) must not block the
    // engine's next session.
    Terminate(Status::OK());
    return false;
  }
  return true;
}

Result<std::vector<std::vector<std::string>>> QueryCursor::Fetch(
    std::size_t n) {
  ConsumerGuard guard(this);
  std::vector<std::vector<std::string>> rows;
  if (fetch_batch_ == nullptr) {
    fetch_batch_ = std::make_unique<RowBatch>(batch_size_);
    fetch_pos_ = 0;
  }
  while (rows.size() < n) {
    if (fetch_pos_ >= fetch_batch_->size()) {
      QUERYER_ASSIGN_OR_RETURN(bool has, Next(fetch_batch_.get()));
      fetch_pos_ = 0;
      if (!has) break;
      continue;  // The refilled batch may legally be empty.
    }
    rows.push_back(fetch_batch_->TakeValues(fetch_pos_++));
  }
  return rows;
}

std::string QueryCursor::AnnotatedPlan() const {
  std::string out;
  if (profile_ != nullptr && profile_->root() != nullptr) {
    out += profile_->ToString();
  } else {
    out += plan_text_;
  }
  out += "\n";
  out += stats_->ToString();
  return out;
}

}  // namespace queryer
