// QueryCursor: the pull-based streaming handle of one query session.
//
// A cursor is what PreparedQuery::Open() / QueryEngine::ExecuteStream()
// return: the session's admission slot, Executor-lowered operator tree and
// per-session ER state stay alive for the cursor's lifetime, and every
// Next(RowBatch*) call drains the physical tree incrementally — a client
// that paginates, stops at a LIMIT, or abandons the query pays only for the
// batches it consumed. QueryEngine::Execute is a thin materialize-from-
// cursor wrapper, so the streaming path is the only drain implementation.
//
//   auto cursor = engine.ExecuteStream(sql);          // Result<CursorPtr>
//   RowBatch batch((*cursor)->batch_size());
//   while (true) {
//     auto has = (*cursor)->Next(&batch);
//     if (!has.ok()) { /* kCancelled / kDeadlineExceeded / error */ }
//     if (!*has) break;                               // End of stream.
//     for (std::size_t i = 0; i < batch.size(); ++i)
//       use(batch.value(i, 0));  // Or batch.TakeValues(i) to own the row.
//   }
//   (*cursor)->Close();                               // Or just destroy it.
//
// Lifetime: a cursor must not outlive its QueryEngine (it points into the
// engine's admission semaphore and catalog). The operator tree arrives
// UN-opened and is opened lazily inside the first Next() — which is where
// a DEDUP plan's whole resolution transaction runs, so open-time failures,
// cancellation and deadline pre-emption all surface through Next's one
// status channel. Close() — or destruction, including mid-stream
// abandonment — closes the operator tree, which cancels in-flight
// scan/probe morsels through the ReorderWindow cancellation path, and
// releases the admission slot so another session can be admitted. Per-
// table ResolutionCoordinator claims never outlive the tree's Open (the
// resolution transaction releases or abandons them before Open returns),
// so an abandoned cursor leaves no claim behind either.
//
// Cancellation is cooperative: Cancel() (safe from any thread) raises the
// session flag; morsel workers observe it through their linked reorder
// windows, the ER comparison loops poll it mid-resolution, and the next
// batch boundary surfaces Status::Cancelled. A deadline
// (EngineOptions::default_query_deadline) is checked at the same points
// and surfaces DeadlineExceeded. The terminal epilogue (tree close, slot
// release, outcome accounting) is mutex-guarded and runs exactly once
// under the cursor's threading contract: Next/Fetch/Close come from the
// single consumer thread, and Cancel is the ONLY entry point that is safe
// from any thread. A Close from a second thread while a Next is in flight
// (say, during the long lazy-open resolution) would tear the operator
// tree down under the running Open — cancel from the other thread and let
// the consumer's Next/Close finish the session instead.

#ifndef QUERYER_ENGINE_QUERY_CURSOR_H_
#define QUERYER_ENGINE_QUERY_CURSOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/exec_stats.h"
#include "exec/operator.h"
#include "exec/table_runtime.h"
#include "obs/operator_profile.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace queryer {

class PreparedQuery;
class QueryEngine;

/// \brief Streaming handle of one admitted query session. Single-consumer:
/// Next/Fetch/Close from one thread at a time; Cancel from any thread.
class QueryCursor {
 public:
  /// Closes the session (see Close) if the client has not already.
  ~QueryCursor();

  QueryCursor(const QueryCursor&) = delete;
  QueryCursor& operator=(const QueryCursor&) = delete;

  /// Output column names ("alias.column"), valid from construction.
  const std::vector<std::string>& columns() const { return columns_; }
  /// The logical plan this session executes.
  const std::string& plan_text() const { return plan_text_; }
  /// The engine's configured RowBatch capacity — the natural size for the
  /// batch handed to Next.
  std::size_t batch_size() const { return batch_size_; }

  /// Pulls the next batch of the answer into `batch` (cleared first).
  /// Returns false at end of stream; a true return with an empty batch is
  /// legal mid-stream (e.g. a fully filtered morsel) — keep pulling.
  /// Cancellation and the deadline are checked at this boundary: once
  /// either trips, Next returns kCancelled / kDeadlineExceeded, the
  /// operator tree is closed (in-flight morsels cancelled) and the
  /// admission slot is released; the error is sticky. End of stream also
  /// releases the session (tree + slot) immediately — a fully drained
  /// cursor blocks nobody, even before Close — and is equally sticky: a
  /// Cancel() arriving after the last batch does not turn success into
  /// an error.
  Result<bool> Next(RowBatch* batch);

  /// Row convenience over Next: up to `n` rows, with the value strings
  /// moved out of the stream. Fewer than `n` rows means end of stream; an
  /// empty vector means the stream was already exhausted. Buffers a
  /// partially consumed batch internally, so do not interleave Fetch with
  /// Next on the same cursor.
  Result<std::vector<std::vector<std::string>>> Fetch(std::size_t n);

  /// Raises the cooperative cancellation flag (idempotent, any thread).
  /// In-flight scan/probe morsels observe it through their reorder
  /// windows; the consumer sees kCancelled at the next batch boundary.
  void Cancel() { cancel_->store(true, std::memory_order_release); }

  /// Ends the session (idempotent): closes the operator tree — cancelling
  /// in-flight morsels — and releases the admission slot. Called by the
  /// destructor for abandoned cursors. After a Close that cut the stream
  /// short, Next returns an error; after a fully drained stream, Next
  /// keeps reporting end of stream (Close is then a no-op — the session
  /// was already released at end-of-stream).
  void Close();

  /// Execution statistics so far; complete once the stream ended or the
  /// cursor was closed. total_seconds covers open → end-of-stream/Close.
  const ExecStats& stats() const { return *stats_; }

  /// The session's per-operator profile tree (never null for cursors opened
  /// through the engine). Like stats(), it survives Close() — the operators
  /// die with the tree, the profile stays with the cursor.
  const PlanProfile& profile() const { return *profile_; }

  /// The EXPLAIN ANALYZE rendering: the plan tree annotated with each
  /// operator's cardinality and self time, followed by the ExecStats
  /// summary (ER-stage breakdown). Complete once the stream ended or the
  /// cursor was closed; called earlier it reports the stats so far.
  std::string AnnotatedPlan() const;

 private:
  friend class PreparedQuery;
  friend class QueryEngine;

  /// Built by QueryEngine around an UN-opened operator tree (opened lazily
  /// at the first Next). `runtimes` pins the involved tables' ER state;
  /// `pool` pins the shared worker pool for straggler morsel tasks.
  /// `session_id` is the Executor's session tag, stamped into terminal
  /// error messages so failures name the session they came from.
  /// `opened_at` is when the session was admitted, so the deadline and
  /// total_seconds cover the ER prologue and Open-time resolution.
  QueryCursor(Semaphore* admission,
              std::vector<std::shared_ptr<TableRuntime>> runtimes,
              std::shared_ptr<ThreadPool> pool,
              std::shared_ptr<std::atomic<bool>> cancel,
              std::unique_ptr<ExecStats> stats,
              std::unique_ptr<PlanProfile> profile,
              std::shared_ptr<TraceSink> trace, OperatorPtr root,
              std::string plan_text, std::size_t batch_size,
              std::uint64_t session_id, double deadline_seconds,
              std::chrono::steady_clock::time_point opened_at);

  /// The batch-boundary admission check: OK, or the sticky terminal
  /// status after cancellation / deadline expiry.
  Status CheckRunnable();
  /// Lazily opens the operator tree (first Next only). The `cursor.open`
  /// failpoint fires here; operator exceptions become Status::Internal.
  /// On failure the tree is torn down WITHOUT Close (same contract as
  /// DrainOperator: destructors cancel whatever the partial Open
  /// dispatched).
  Status EnsureOpen();
  /// Transitions into a terminal state: closes the tree, releases the
  /// slot, records total_seconds, and makes `status` sticky (prefixed
  /// with the session id when it is an error). Thread-safe and
  /// exactly-once: the lifecycle mutex serializes it against a concurrent
  /// Close, and the released/ folded flags make slot release and outcome
  /// accounting idempotent.
  void Terminate(Status status);
  void TerminateLocked(Status status);
  void ReleaseAdmission();
  /// The once-per-session epilogue, run by the first Terminate: folds the
  /// profile's relational self-times into stats_, emits the per-operator
  /// and emit trace spans, and counts the session outcome in the global
  /// metrics. Terminate runs twice on some paths (end-of-stream Next, then
  /// Close) — the folded_ flag keeps this to exactly once.
  void FinishObservation(const Status& status);

  // Destruction order matters: root_ (declared last) dies first, while
  // stats_, profile_ (operators hold raw OperatorProfile pointers into
  // it), the pinned runtimes and the pool it points into are alive.
  Semaphore* admission_;  // Null once released.
  std::vector<std::shared_ptr<TableRuntime>> runtimes_;
  std::shared_ptr<ThreadPool> pool_;
  std::shared_ptr<std::atomic<bool>> cancel_;
  std::unique_ptr<ExecStats> stats_;
  std::unique_ptr<PlanProfile> profile_;
  std::shared_ptr<TraceSink> trace_;  // Null = tracing off.
  std::vector<std::string> columns_;
  std::string plan_text_;
  std::size_t batch_size_;
  std::uint64_t session_id_ = 0;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  std::chrono::steady_clock::time_point opened_at_;

  /// Serializes the terminal epilogue (Terminate/Close) so a Close racing
  /// a cancellation-triggered Terminate releases the slot and counts the
  /// outcome exactly once.
  std::mutex lifecycle_mu_;
  Status status_;        // Sticky terminal error (OK while streaming).
  bool tree_opened_ = false;  // Set by EnsureOpen at the first Next.
  bool finished_ = false;  // Stream ended cleanly.
  bool closed_ = false;
  bool folded_ = false;  // FinishObservation already ran.
  // First Next() call, for the session's "emit" trace span.
  bool emit_started_ = false;
  std::chrono::steady_clock::time_point first_next_{};

  // Debug-build enforcement of the single-consumer contract: Next, Fetch
  // and Close each enter through a ConsumerGuard that records the calling
  // thread here and aborts (QUERYER_DCHECK) when a second thread is
  // already inside. Same-thread reentrancy (Fetch -> Next, destructor ->
  // Close) is legal, hence the depth counter; `consumer_depth_` is only
  // touched by the thread that owns `consumer_`.
  class ConsumerGuard;
  std::atomic<std::thread::id> consumer_{};
  int consumer_depth_ = 0;

  // Fetch's carry-over of a partially consumed batch.
  std::unique_ptr<RowBatch> fetch_batch_;
  std::size_t fetch_pos_ = 0;

  OperatorPtr root_;  // Null after Close.
};

/// Cursors are heap-allocated: operators hold pointers into the cursor's
/// session state, so the handle itself must not move.
using CursorPtr = std::unique_ptr<QueryCursor>;

}  // namespace queryer

#endif  // QUERYER_ENGINE_QUERY_CURSOR_H_
