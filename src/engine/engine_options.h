// Engine-wide configuration and the materialized query answer type, split
// out of query_engine.h so the streaming-session headers (prepared_query.h,
// query_cursor.h) can use them without pulling in the whole facade.

#ifndef QUERYER_ENGINE_ENGINE_OPTIONS_H_
#define QUERYER_ENGINE_ENGINE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "blocking/token_blocking.h"
#include "common/string_util.h"
#include "exec/exec_stats.h"
#include "exec/row_batch.h"
#include "matching/profile_matcher.h"
#include "metablocking/meta_blocking.h"
#include "obs/trace.h"

namespace queryer {

/// \brief How DEDUP queries are evaluated.
enum class ExecutionMode {
  /// Batch Approach (BA): fully deduplicate every involved table first,
  /// then answer the query. The paper's baseline.
  kBatch,
  /// Naive ER Solution (NES): Deduplicate directly above each Table Scan.
  kNaive,
  /// Naive ER plan 2: Deduplicate above each Filter.
  kNaive2,
  /// Advanced ER Solution (AES): cost-based operator placement.
  kAdvanced,
};

std::string_view ExecutionModeToString(ExecutionMode mode);

/// \brief Physical layout of a materialized QueryResult.
enum class ResultLayout {
  /// `rows[i]` holds row i — one value vector per row (the classic shape).
  kRowMajor,
  /// `column_data[j]` holds column j, one value per row in emission order.
  /// Cheaper to materialize (per-column vectors grow without per-row
  /// allocations) and the natural shape for export to columnar consumers.
  kColumnMajor,
};

/// \brief Engine-wide configuration. Blocking/meta-blocking/matching apply
/// to tables registered afterwards.
struct EngineOptions {
  BlockingOptions blocking;
  MetaBlockingConfig meta_blocking;
  MatchingConfig matching;
  ExecutionMode mode = ExecutionMode::kAdvanced;
  /// When false, resolved links are forgotten before every DEDUP query —
  /// the "Without LI" arm of the paper's Fig. 11.
  bool use_link_index = true;
  /// When true, every ER operator appends its surviving comparisons to the
  /// result stats (for Pair Completeness measurement).
  bool collect_comparisons = false;
  /// Worker threads for the data-parallel phases (comparison execution,
  /// once-off index construction). 0 = hardware concurrency; 1 = fully
  /// sequential execution (no pool — identical to the pre-parallel engine).
  /// Query answers and LinkIndex::num_links() are identical across thread
  /// counts; only the executed/skipped comparison split may vary. Engines
  /// with num_threads > 1 draw their workers from the process-wide shared
  /// pool (ThreadPool::Shared), not a private one.
  std::size_t num_threads = 1;
  /// Maximum number of query sessions admitted simultaneously — an open
  /// QueryCursor holds one admission slot for its whole lifetime, and
  /// Execute/Explain count as one session for their duration.
  /// 1 (default) serializes queries — exactly the single-client engine,
  /// merely made safe to call from any thread. Values > 1 admit that many
  /// concurrent query sessions, which then resolve through the Link
  /// Index's reader/writer protocol and the per-table resolution
  /// coordinator (entity claims + comparison-dedup table). 0 = unlimited.
  std::size_t max_concurrent_queries = 1;
  /// Bounded admission: how long (seconds) an arriving session may wait
  /// for an admission slot before the engine sheds it with
  /// Status::kResourceExhausted instead of queueing forever. 0 (default)
  /// = wait indefinitely, the pre-existing behavior. A shed session never
  /// held a slot, ran no prologue and claimed nothing; it is counted in
  /// queryer_sessions_shed_total.
  double admission_timeout = 0;
  /// Per-tenant admission quota, enforced by the query server front end
  /// (src/server, docs/SERVER.md): how many sessions one authenticated
  /// tenant may hold concurrently — open wire cursors plus in-flight
  /// EXECUTEs each count as one. Over-quota requests are shed with
  /// kResourceExhausted BEFORE they touch engine admission, so a single
  /// tenant can never occupy every max_concurrent_queries slot and starve
  /// the others. 0 (default) = unlimited; the in-process API ignores this
  /// field entirely (it has no tenant notion).
  std::size_t max_concurrent_per_tenant = 0;
  /// RowBatch capacity of the batch execution pipeline: how many rows flow
  /// through one Next(RowBatch*) call. Also the morsel granularity of
  /// parallel table scans. Query answers are identical for every value;
  /// tiny values only add per-batch overhead. Clamped to at least 1.
  std::size_t batch_size = kDefaultBatchSize;
  /// Per-session deadline in seconds, measured from cursor open (which is
  /// where a DEDUP query's resolution work happens) and checked at batch
  /// boundaries — a session never aborts mid-batch. A cursor that runs
  /// past it surfaces Status::DeadlineExceeded from Next() and releases
  /// its resources on Close. 0 (default) = no deadline. Captured at
  /// Prepare time like the rest of the options.
  double default_query_deadline = 0;
  /// When set, every session records Chrome trace-event JSON into this sink
  /// (plan/open/emit spans, per-operator spans, ER-stage spans, per-morsel
  /// instants on the worker threads). Null (default) = tracing off, with
  /// strictly zero overhead — no clock reads, no allocations. Sinks may be
  /// shared across sessions; events carry the session id in their args.
  /// Captured at Prepare time like the rest of the options.
  std::shared_ptr<TraceSink> trace_sink;
  /// Physical layout of QueryResult answers materialized by Execute().
  /// Streaming cursors are unaffected (they deliver RowBatches). Both
  /// layouts hold the same answer; only the storage shape differs.
  ResultLayout result_layout = ResultLayout::kRowMajor;
  /// Persistence root. Empty (default) = persistence off: the engine is
  /// purely in-memory, exactly the pre-persistence behavior. When set,
  /// every registered table gets a durable Link Index under
  /// `<data_dir>/<table>.li` + `<table>.lilog` (opened at registration —
  /// prior ER work is recovered before the first query), and
  /// SaveSnapshots() / RegisterTableFromSnapshots() read and write
  /// `<table>.tbl` / `<table>.tbi` there.
  std::string data_dir;
  /// fsync link-log appends and snapshot files before commit. Off by
  /// default: tests and benches value speed; durability against OS crash
  /// (not just process crash) requires it.
  bool persist_fsync = false;
  /// Link-log size that triggers automatic compaction (snapshot + log
  /// truncate) at the end of a resolution. 0 disables auto-compaction;
  /// SaveSnapshots() still compacts explicitly.
  std::uint64_t link_log_compact_bytes = 4u << 20;
};

/// \brief A materialized query answer plus its execution statistics.
///
/// Exactly one of `rows` / `column_data` is populated, per `layout`.
/// Position-independent consumers should use the accessors — ColumnIndex()
/// to find a column by name (case-insensitive, like the engine's schema
/// lookup) and ValueAt() to read a cell regardless of layout.
struct QueryResult {
  std::vector<std::string> columns;
  /// Which of `rows` / `column_data` holds the answer.
  ResultLayout layout = ResultLayout::kRowMajor;
  /// Row-major storage: rows[i][j] is row i, column j.
  std::vector<std::vector<std::string>> rows;
  /// Column-major storage: column_data[j][i] is row i, column j.
  std::vector<std::vector<std::string>> column_data;
  ExecStats stats;
  std::string plan_text;

  /// Position of the named output column (case-insensitive), or nullopt.
  std::optional<std::size_t> ColumnIndex(std::string_view name) const {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (EqualsIgnoreCase(columns[i], name)) return i;
    }
    return std::nullopt;
  }

  /// Number of answer rows, independent of layout.
  std::size_t num_rows() const {
    return layout == ResultLayout::kColumnMajor
               ? (column_data.empty() ? 0 : column_data.front().size())
               : rows.size();
  }

  /// Cell (row, col), independent of layout. No bounds checking beyond the
  /// underlying vectors'.
  std::string_view ValueAt(std::size_t row, std::size_t col) const {
    return layout == ResultLayout::kColumnMajor
               ? std::string_view(column_data[col][row])
               : std::string_view(rows[row][col]);
  }
};

}  // namespace queryer

#endif  // QUERYER_ENGINE_ENGINE_OPTIONS_H_
