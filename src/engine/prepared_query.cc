#include "engine/prepared_query.h"

#include <utility>

#include "engine/query_engine.h"

namespace queryer {

PreparedQuery::PreparedQuery(
    QueryEngine* engine, std::string sql, SelectStatement statement,
    PlanPtr plan, EngineOptions options,
    std::vector<std::shared_ptr<TableRuntime>> involved)
    : engine_(engine),
      sql_(std::move(sql)),
      statement_(std::move(statement)),
      plan_(std::move(plan)),
      // Null plan = the without-LI arm, which must plan after the
      // per-Open Link Index reset (see QueryEngine::Prepare).
      plan_text_(plan_ != nullptr
                     ? plan_->ToString()
                     : "(planned at Open: the without-LI arm resets the "
                       "Link Index before planning)"),
      options_(std::move(options)),
      involved_(std::move(involved)) {}

Result<CursorPtr> PreparedQuery::Open() const {
  return engine_->OpenPrepared(*this);
}

}  // namespace queryer
