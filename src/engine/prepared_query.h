// PreparedQuery: one SELECT statement, parsed and planned once against a
// QueryEngine, re-executable any number of times.
//
//   auto prepared = engine.Prepare(sql);              // Parse + plan once.
//   std::puts((*prepared).plan_text().c_str());       // Inspectable plan.
//   auto cursor = (*prepared).Open();                 // One streaming run.
//   ... drain *cursor ...
//   auto again = (*prepared).Open();                  // Plan reused as-is.
//
// The execution mode and the engine options (batch size, deadline, Link
// Index arm, ...) are captured at Prepare time: later setter calls on the
// engine do not retroactively change a prepared query. Each Open() lowers
// the captured logical plan into a fresh physical tree (a new session with
// its own admission slot, session id and ExecStats), so concurrent opens
// of the same PreparedQuery from different threads are independent
// sessions. A PreparedQuery must not outlive its engine.

#ifndef QUERYER_ENGINE_PREPARED_QUERY_H_
#define QUERYER_ENGINE_PREPARED_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/engine_options.h"
#include "engine/query_cursor.h"
#include "exec/table_runtime.h"
#include "plan/logical_plan.h"
#include "sql/parser.h"

namespace queryer {

class QueryEngine;

/// \brief A parsed + planned SELECT, bound to its engine. Movable; cheap
/// to keep around for re-execution.
class PreparedQuery {
 public:
  PreparedQuery(PreparedQuery&&) noexcept = default;
  PreparedQuery& operator=(PreparedQuery&&) noexcept = default;
  PreparedQuery(const PreparedQuery&) = delete;
  PreparedQuery& operator=(const PreparedQuery&) = delete;

  /// The SQL this query was prepared from.
  const std::string& sql() const { return sql_; }
  /// The logical plan the captured mode chose, printable form. The
  /// without-LI experiment arm is the one exception: it must plan after
  /// the per-Open Link Index reset, so until the first Open this returns
  /// a placeholder saying so (QueryResult::plan_text always reports the
  /// plan that actually executed).
  const std::string& plan_text() const { return plan_text_; }
  /// True for SELECT DEDUP statements.
  bool dedup() const { return statement_.dedup; }
  /// True when the statement was prefixed with EXPLAIN [ANALYZE]. The
  /// prepared plan is the same either way — the flags only change how
  /// QueryEngine::Execute presents the answer.
  bool explain() const { return statement_.explain; }
  /// True for EXPLAIN ANALYZE: execute, then present the annotated plan.
  bool analyze() const { return statement_.analyze; }

  /// The ER runtimes of the tables a DEDUP statement touches, resolved and
  /// pinned at Prepare (empty for non-DEDUP statements — their answers do
  /// not depend on Link Index state). The server's result cache reads the
  /// Link Index epoch of each to fingerprint an answer's validity.
  const std::vector<std::shared_ptr<TableRuntime>>& involved_runtimes() const {
    return involved_;
  }

  /// Opens one streaming session over the prepared plan: acquires an
  /// admission slot (blocking while the engine is at
  /// max_concurrent_queries), runs the mode's per-query ER prologue
  /// (Batch-Approach cleaning / without-LI reset), lowers the plan and
  /// opens the operator tree. The returned cursor owns the slot and the
  /// session state until it is closed or destroyed. One exception to
  /// plan capture: the without-LI arm resets the Link Index at every
  /// Open, so it re-plans under the post-reset statistics (reset, then
  /// plan — the order the facade always had).
  Result<CursorPtr> Open() const;

 private:
  friend class QueryEngine;

  PreparedQuery(QueryEngine* engine, std::string sql,
                SelectStatement statement, PlanPtr plan,
                EngineOptions options,
                std::vector<std::shared_ptr<TableRuntime>> involved);

  QueryEngine* engine_;
  std::string sql_;
  SelectStatement statement_;
  PlanPtr plan_;
  std::string plan_text_;
  /// Options snapshot from Prepare time; Open executes under these.
  EngineOptions options_;
  /// Runtimes of the tables the statement touches (resolved at Prepare),
  /// pinned so re-execution does not re-look them up.
  std::vector<std::shared_ptr<TableRuntime>> involved_;
};

}  // namespace queryer

#endif  // QUERYER_ENGINE_PREPARED_QUERY_H_
