#include "engine/query_engine.h"

#include <mutex>

#include "baseline/batch_er.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace queryer {

std::string_view ExecutionModeToString(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kBatch: return "BA";
    case ExecutionMode::kNaive: return "NES";
    case ExecutionMode::kNaive2: return "NES2";
    case ExecutionMode::kAdvanced: return "AES";
  }
  return "?";
}

QueryEngine::QueryEngine(EngineOptions options)
    : options_(std::move(options)),
      statistics_(std::make_unique<StatisticsCache>()) {
  // The without-LI experiment arm resets the Link Index per query; letting
  // sessions overlap would race those resets against in-flight
  // resolutions, so that configuration is forcibly serialized.
  if (!options_.use_link_index) options_.max_concurrent_queries = 1;
  admission_ = std::make_unique<Semaphore>(options_.max_concurrent_queries);
  std::size_t threads = options_.num_threads == 0
                            ? ThreadPool::HardwareConcurrency()
                            : options_.num_threads;
  // A single worker would only re-run the sequential path with queue
  // overhead; stay pool-less so every phase takes its exact seed-code
  // route. Multi-threaded engines draw from the process-wide shared pool
  // (grown to at least the requested width) through a capped view, so
  // num_threads stays this engine's parallelism CAP even after another
  // engine grows the shared pool wider.
  if (threads > 1) {
    pool_ = std::make_shared<CappedThreadPool>(ThreadPool::Shared(threads),
                                               threads);
  }
}

Status QueryEngine::RegisterTable(TablePtr table) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  QUERYER_RETURN_NOT_OK(catalog_.Register(table));
  // The e_id attribute names the row; it carries no descriptive content, so
  // it takes part in neither blocking nor matching.
  BlockingOptions blocking = options_.blocking;
  MatchingConfig matching = options_.matching;
  if (auto id_column = table->schema().IndexOf("id"); id_column.has_value()) {
    blocking.excluded_attributes.push_back(*id_column);
    matching.excluded_attributes.push_back(*id_column);
  }
  auto runtime = std::make_shared<TableRuntime>(
      table, std::move(blocking), options_.meta_blocking, matching);
  runtime->set_thread_pool(pool_);
  runtimes_[ToLower(table->name())] = std::move(runtime);
  return Status::OK();
}

Status QueryEngine::RegisterCsvFile(const std::string& path,
                                    std::string table_name) {
  QUERYER_ASSIGN_OR_RETURN(TablePtr table,
                           ReadCsvFile(path, std::move(table_name)));
  return RegisterTable(std::move(table));
}

Status QueryEngine::WarmIndices(const std::string& table_name) {
  QUERYER_ASSIGN_OR_RETURN(std::shared_ptr<TableRuntime> runtime,
                           FindRuntime(runtimes_, table_name));
  return runtime->WarmIndices();
}

Result<std::shared_ptr<TableRuntime>> QueryEngine::GetRuntime(
    const std::string& table_name) {
  return FindRuntime(runtimes_, table_name);
}

Result<SelectStatement> QueryEngine::Parse(const std::string& sql) const {
  return ParseSelect(sql);
}

Result<std::vector<std::shared_ptr<TableRuntime>>>
QueryEngine::InvolvedRuntimes(const SelectStatement& stmt) {
  std::vector<std::shared_ptr<TableRuntime>> involved;
  QUERYER_ASSIGN_OR_RETURN(std::shared_ptr<TableRuntime> from,
                           FindRuntime(runtimes_, stmt.from.name));
  involved.push_back(std::move(from));
  for (const JoinSpec& join : stmt.joins) {
    QUERYER_ASSIGN_OR_RETURN(std::shared_ptr<TableRuntime> runtime,
                             FindRuntime(runtimes_, join.table.name));
    involved.push_back(std::move(runtime));
  }
  return involved;
}

PlannerMode QueryEngine::PlannerModeFor(ExecutionMode mode) const {
  switch (mode) {
    case ExecutionMode::kNaive:
      return PlannerMode::kNaive;
    case ExecutionMode::kNaive2:
      return PlannerMode::kNaive2;
    case ExecutionMode::kBatch:
      // Everything is resolved up front, so the plan shape is immaterial;
      // NES2 keeps the dedup operators cheap (they find all links in LI).
      return PlannerMode::kNaive2;
    case ExecutionMode::kAdvanced:
      return PlannerMode::kAdvanced;
  }
  return PlannerMode::kAdvanced;
}

Result<QueryResult> QueryEngine::Execute(const std::string& sql) {
  // Admission: at most max_concurrent_queries sessions past this point.
  // With the default of 1 this serializes queries — the single-client
  // engine, made safe to call from any thread.
  Semaphore::Slot session(admission_.get());
  Stopwatch total;
  QUERYER_ASSIGN_OR_RETURN(SelectStatement stmt, Parse(sql));

  QueryResult result;
  result.stats.collect_comparisons = options_.collect_comparisons;

  if (stmt.dedup) {
    QUERYER_ASSIGN_OR_RETURN(auto involved, InvolvedRuntimes(stmt));
    if (options_.mode == ExecutionMode::kBatch) {
      // BA: clean every involved table in full before answering. The
      // per-runtime mutex serializes concurrent sessions racing the same
      // cold table: the first cleans, the rest wait here and reuse.
      for (const auto& runtime : involved) {
        std::lock_guard<std::mutex> batch_lock(runtime->batch_er_mutex());
        if (runtime->link_index().num_resolved() <
            runtime->table().num_rows()) {
          BatchDeduplicate(runtime.get(), &result.stats);
        }
      }
    } else if (!options_.use_link_index) {
      // "Without LI": no reuse of links across queries. (An experiment
      // arm; concurrent sessions would race each other's resets, so run
      // this arm with max_concurrent_queries == 1.)
      for (const auto& runtime : involved) runtime->ResetLinkIndex();
    }
  }

  Planner planner(&catalog_, &runtimes_, statistics_.get());
  QUERYER_ASSIGN_OR_RETURN(
      PlanPtr plan, planner.BuildPlan(stmt, PlannerModeFor(options_.mode)));
  result.plan_text = plan->ToString();

  Executor executor(&catalog_, &runtimes_, &result.stats, pool_.get(),
                    concurrent_sessions(), options_.batch_size);
  QUERYER_ASSIGN_OR_RETURN(QueryOutput output, executor.Run(*plan));

  result.columns = std::move(output.columns);
  result.rows.reserve(output.rows.size());
  for (Row& row : output.rows) {
    result.rows.push_back(std::move(row.values));
  }
  result.stats.total_seconds = total.ElapsedSeconds();
  return result;
}

Result<std::string> QueryEngine::Explain(const std::string& sql) {
  // Planning can be heavy on a cold statistics cache; Explain honors the
  // same admission bound as Execute.
  Semaphore::Slot session(admission_.get());
  QUERYER_ASSIGN_OR_RETURN(SelectStatement stmt, Parse(sql));
  Planner planner(&catalog_, &runtimes_, statistics_.get());
  QUERYER_ASSIGN_OR_RETURN(
      PlanPtr plan, planner.BuildPlan(stmt, PlannerModeFor(options_.mode)));
  return plan->ToString();
}

}  // namespace queryer
