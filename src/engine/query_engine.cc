#include "engine/query_engine.h"

#include <chrono>
#include <mutex>
#include <utility>

#include "baseline/batch_er.h"
#include "common/cancel_context.h"
#include "common/failpoint.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "persist/durable_link_index.h"
#include "persist/index_snapshot.h"
#include "persist/snapshot.h"
#include "persist/table_snapshot.h"

namespace queryer {

std::string_view ExecutionModeToString(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kBatch: return "BA";
    case ExecutionMode::kNaive: return "NES";
    case ExecutionMode::kNaive2: return "NES2";
    case ExecutionMode::kAdvanced: return "AES";
  }
  return "?";
}

QueryEngine::QueryEngine(EngineOptions options)
    : options_(std::move(options)),
      statistics_(std::make_unique<StatisticsCache>()) {
  // The without-LI experiment arm resets the Link Index per query; letting
  // sessions overlap would race those resets against in-flight
  // resolutions, so that configuration is forcibly serialized.
  if (!options_.use_link_index) options_.max_concurrent_queries = 1;
  admission_ = std::make_unique<Semaphore>(options_.max_concurrent_queries);
  // Sessions blocked on admission show up in the process-wide wait
  // histogram (bench_concurrent_queries reports its quantiles).
  admission_->set_wait_histogram(GlobalEngineMetrics().admission_wait);
  std::size_t threads = options_.num_threads == 0
                            ? ThreadPool::HardwareConcurrency()
                            : options_.num_threads;
  // A single worker would only re-run the sequential path with queue
  // overhead; stay pool-less so every phase takes its exact seed-code
  // route. Multi-threaded engines draw from the process-wide shared pool
  // (grown to at least the requested width) through a capped view, so
  // num_threads stays this engine's parallelism CAP even after another
  // engine grows the shared pool wider.
  if (threads > 1) {
    pool_ = std::make_shared<CappedThreadPool>(ThreadPool::Shared(threads),
                                               threads);
  }
}

Status QueryEngine::RegisterTable(TablePtr table) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  // Duplicate check before the durable open below: a second registration
  // of the same name must not touch (and recover) the log files the first
  // one's sidecar has open.
  if (catalog_.Contains(table->name())) {
    return Status::AlreadyExists("table already registered: " +
                                 table->name());
  }
  // The e_id attribute names the row; it carries no descriptive content, so
  // it takes part in neither blocking nor matching.
  BlockingOptions blocking = options_.blocking;
  MatchingConfig matching = options_.matching;
  if (auto id_column = table->schema().IndexOf("id"); id_column.has_value()) {
    blocking.excluded_attributes.push_back(*id_column);
    matching.excluded_attributes.push_back(*id_column);
  }
  auto runtime = std::make_shared<TableRuntime>(
      table, std::move(blocking), options_.meta_blocking, matching);
  runtime->set_thread_pool(pool_);
  // With a data_dir, every table — CSV-loaded or snapshot-loaded — gets a
  // durable Link Index: prior ER work is recovered into the fresh index
  // here, before the table serves any query.
  if (!options_.data_dir.empty()) {
    QUERYER_RETURN_NOT_OK(
        AttachDurableLinkIndex(table->name(), runtime.get()));
  }
  QUERYER_RETURN_NOT_OK(catalog_.Register(table));
  runtimes_[ToLower(table->name())] = std::move(runtime);
  // After the registration is fully visible: a plan cached under the new
  // version can rely on the runtime being in place.
  catalog_version_->fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

std::string QueryEngine::PersistPath(const std::string& table_name,
                                     std::string_view suffix) const {
  return options_.data_dir + "/" + ToLower(table_name) + std::string(suffix);
}

Status QueryEngine::AttachDurableLinkIndex(const std::string& table_name,
                                           TableRuntime* runtime) {
  QUERYER_RETURN_NOT_OK(EnsureDir(options_.data_dir));
  DurableLinkIndex::Options li_options;
  li_options.fsync = options_.persist_fsync;
  li_options.compact_bytes = options_.link_log_compact_bytes;
  QUERYER_ASSIGN_OR_RETURN(
      std::unique_ptr<DurableLinkIndex> durable,
      DurableLinkIndex::Open(PersistPath(table_name, ".li"),
                             PersistPath(table_name, ".lilog"),
                             &runtime->link_index(), li_options));
  std::shared_ptr<DurableLinkIndex> shared = std::move(durable);
  runtime->set_link_index_durability(
      shared, [durable = shared.get()] { return durable->MaybeCompact(); });
  durable_links_[ToLower(table_name)] = std::move(shared);
  return Status::OK();
}

Status QueryEngine::RegisterTableFromSnapshots(const std::string& table_name) {
  if (options_.data_dir.empty()) {
    return Status::InvalidArgument(
        "RegisterTableFromSnapshots requires EngineOptions::data_dir");
  }
  QUERYER_ASSIGN_OR_RETURN(
      TablePtr table, TableSnapshotIO::Load(PersistPath(table_name, ".tbl")));
  QUERYER_RETURN_NOT_OK(RegisterTable(table));
  // The index snapshot is an optional accelerator: present and valid, it
  // replaces the WarmIndices rebuild; absent, the lazy build covers it. A
  // present-but-corrupt one fails loudly — silently rebuilding would mask
  // the damage until the next save.
  const std::string tbi_path = PersistPath(table_name, ".tbi");
  if (FileExists(tbi_path)) {
    QUERYER_ASSIGN_OR_RETURN(LoadedIndexes indexes,
                             IndexSnapshotIO::Load(tbi_path, table->num_rows()));
    QUERYER_ASSIGN_OR_RETURN(std::shared_ptr<TableRuntime> runtime,
                             FindRuntime(runtimes_, table_name));
    runtime->InstallBlockIndex(std::move(indexes.tbi));
    runtime->InstallAttributeWeights(std::move(indexes.weights));
  }
  return Status::OK();
}

Status QueryEngine::SaveSnapshot(const std::string& table_name) {
  if (options_.data_dir.empty()) {
    return Status::InvalidArgument(
        "SaveSnapshot requires EngineOptions::data_dir");
  }
  QUERYER_ASSIGN_OR_RETURN(std::shared_ptr<TableRuntime> runtime,
                           FindRuntime(runtimes_, table_name));
  QUERYER_RETURN_NOT_OK(EnsureDir(options_.data_dir));
  QUERYER_RETURN_NOT_OK(runtime->WarmIndices());
  QUERYER_RETURN_NOT_OK(TableSnapshotIO::Write(
      runtime->table(), PersistPath(table_name, ".tbl"),
      options_.persist_fsync));
  QUERYER_RETURN_NOT_OK(IndexSnapshotIO::Write(
      runtime->tbi(), runtime->attribute_weights(),
      PersistPath(table_name, ".tbi"), options_.persist_fsync));
  // Fold the link log into its snapshot too, so a warm start replays
  // nothing.
  if (auto it = durable_links_.find(ToLower(table_name));
      it != durable_links_.end()) {
    QUERYER_RETURN_NOT_OK(it->second->Compact());
  }
  return Status::OK();
}

Status QueryEngine::SaveSnapshots() {
  for (const std::string& name : catalog_.table_names()) {
    QUERYER_RETURN_NOT_OK(SaveSnapshot(name));
  }
  return Status::OK();
}

Status QueryEngine::RegisterCsvFile(const std::string& path,
                                    std::string table_name) {
  QUERYER_ASSIGN_OR_RETURN(TablePtr table,
                           ReadCsvFile(path, std::move(table_name)));
  return RegisterTable(std::move(table));
}

Status QueryEngine::WarmIndices(const std::string& table_name) {
  QUERYER_ASSIGN_OR_RETURN(std::shared_ptr<TableRuntime> runtime,
                           FindRuntime(runtimes_, table_name));
  return runtime->WarmIndices();
}

Result<std::shared_ptr<TableRuntime>> QueryEngine::GetRuntime(
    const std::string& table_name) {
  return FindRuntime(runtimes_, table_name);
}

Result<SelectStatement> QueryEngine::Parse(const std::string& sql) const {
  return ParseSelect(sql);
}

Result<std::vector<std::shared_ptr<TableRuntime>>>
QueryEngine::InvolvedRuntimes(const SelectStatement& stmt) {
  std::vector<std::shared_ptr<TableRuntime>> involved;
  QUERYER_ASSIGN_OR_RETURN(std::shared_ptr<TableRuntime> from,
                           FindRuntime(runtimes_, stmt.from.name));
  involved.push_back(std::move(from));
  for (const JoinSpec& join : stmt.joins) {
    QUERYER_ASSIGN_OR_RETURN(std::shared_ptr<TableRuntime> runtime,
                             FindRuntime(runtimes_, join.table.name));
    involved.push_back(std::move(runtime));
  }
  return involved;
}

PlannerMode QueryEngine::PlannerModeFor(ExecutionMode mode) const {
  switch (mode) {
    case ExecutionMode::kNaive:
      return PlannerMode::kNaive;
    case ExecutionMode::kNaive2:
      return PlannerMode::kNaive2;
    case ExecutionMode::kBatch:
      // Everything is resolved up front, so the plan shape is immaterial;
      // NES2 keeps the dedup operators cheap (they find all links in LI).
      return PlannerMode::kNaive2;
    case ExecutionMode::kAdvanced:
      return PlannerMode::kAdvanced;
  }
  return PlannerMode::kAdvanced;
}

Result<PreparedQuery> QueryEngine::Prepare(const std::string& sql) {
  QUERYER_ASSIGN_OR_RETURN(SelectStatement stmt, Parse(sql));
  // Resolve the involved runtimes now: a DEDUP statement over an
  // unregistered table must fail at Prepare, not at the first Open, and
  // Open's ER prologue reuses the handles without a registry lookup.
  std::vector<std::shared_ptr<TableRuntime>> involved;
  if (stmt.dedup) {
    QUERYER_ASSIGN_OR_RETURN(involved, InvolvedRuntimes(stmt));
  }
  // Planning is thread-safe (the statistics cache is mutex-guarded, the
  // runtimes' lazy indices are call_once-guarded), so Prepare takes no
  // admission slot — preparing while one of your own cursors holds the
  // engine's only slot must not deadlock.
  //
  // The without-LI arm is the one statement shape Prepare cannot plan: it
  // resets the Link Index at every Open and must plan AFTER that reset
  // (the cost estimates consult the index's resolved state), so planning
  // here would only produce a plan Open discards. Defer it entirely —
  // plan_text() says so until the first Open.
  PlanPtr plan;
  if (!(stmt.dedup && !options_.use_link_index)) {
    TraceSpan plan_span(options_.trace_sink.get(), "plan", "session");
    Planner planner(&catalog_, &runtimes_, statistics_.get());
    QUERYER_ASSIGN_OR_RETURN(
        plan, planner.BuildPlan(stmt, PlannerModeFor(options_.mode)));
  }
  return PreparedQuery(this, sql, std::move(stmt), std::move(plan), options_,
                       std::move(involved));
}

Result<CursorPtr> QueryEngine::OpenPrepared(const PreparedQuery& prepared) {
  const EngineOptions& options = prepared.options_;
  // Admission: at most max_concurrent_queries sessions past this point.
  // With admission_timeout set, an arriving session waits boundedly and is
  // shed with kResourceExhausted when the engine stays saturated — it held
  // nothing and ran nothing. The RAII slot covers every failure path
  // (including exceptions) of the fallible prologue below; on success it
  // is disarmed and the slot is held for the whole cursor lifetime,
  // released by QueryCursor::Close (or its destructor).
  if (options.admission_timeout > 0) {
    if (!admission_->TryAcquireFor(options.admission_timeout)) {
      GlobalEngineMetrics().sessions_shed->Increment();
      return Status::ResourceExhausted(
          "no admission slot freed within " +
          std::to_string(options.admission_timeout) +
          "s (max_concurrent_queries = " +
          std::to_string(options.max_concurrent_queries) + ")");
    }
  } else {
    admission_->Acquire();
  }
  Semaphore::Slot slot(admission_.get(), Semaphore::Slot::Adopt{});
  // After the acquire, so an injected admission failure exercises the RAII
  // release (a leaked slot here would wedge the engine at saturation).
  QUERYER_FAILPOINT("engine.admission");
  const auto opened_at = std::chrono::steady_clock::now();
  GlobalEngineMetrics().queries_opened->Increment();

  auto stats = std::make_unique<ExecStats>();
  stats->collect_comparisons = options.collect_comparisons;

  if (prepared.statement_.dedup) {
    if (options.mode == ExecutionMode::kBatch) {
      // BA: clean every involved table in full before answering. The
      // per-runtime mutex serializes concurrent sessions racing the same
      // cold table: the first cleans, the rest wait here and reuse.
      for (const auto& runtime : prepared.involved_) {
        std::lock_guard<std::mutex> batch_lock(runtime->batch_er_mutex());
        if (runtime->link_index().num_resolved() <
            runtime->table().num_rows()) {
          QUERYER_RETURN_NOT_OK(
              BatchDeduplicate(runtime.get(), stats.get()).status());
        }
      }
    } else if (!options.use_link_index) {
      // "Without LI": no reuse of links across queries. (An experiment
      // arm; concurrent sessions would race each other's resets, so run
      // this arm with max_concurrent_queries == 1.)
      for (const auto& runtime : prepared.involved_) {
        runtime->ResetLinkIndex();
      }
    }
  }

  // The without-LI arm just reset the Link Index this query plans
  // against, so Prepare deferred planning to here: plan under the
  // post-reset state, exactly the order the facade always had (reset,
  // then plan). Normal prepared queries reuse the captured plan.
  const LogicalPlan* plan = prepared.plan_.get();
  PlanPtr deferred;
  std::string plan_text = prepared.plan_text_;
  if (plan == nullptr) {
    TraceSpan plan_span(options.trace_sink.get(), "plan", "session");
    Planner planner(&catalog_, &runtimes_, statistics_.get());
    Result<PlanPtr> fresh = planner.BuildPlan(prepared.statement_,
                                              PlannerModeFor(options.mode));
    if (!fresh.ok()) return fresh.status();
    deferred = fresh.MoveValueUnsafe();
    plan = deferred.get();
    plan_text = plan->ToString();
  }

  // The session-level cancellation flag: QueryCursor::Cancel raises it,
  // every morsel-driven operator's reorder window observes it.
  auto cancel = std::make_shared<std::atomic<bool>>(false);
  // The same flag plus the session deadline, packaged for the ER operators'
  // cooperative polling: the Deduplicator's comparison loops check it so
  // Cancel() and the deadline pre-empt a long resolution, not just the
  // batch boundaries. The deadline mirrors the cursor's (both measure from
  // admission).
  auto cancel_ctx = std::make_shared<CancelContext>();
  cancel_ctx->cancel = cancel;
  if (options.default_query_deadline > 0) {
    cancel_ctx->has_deadline = true;
    cancel_ctx->deadline =
        opened_at +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options.default_query_deadline));
  }
  // Every session carries a profile tree (EXPLAIN ANALYZE and the
  // scan/filter/join/project stats breakdown read from it); the overhead
  // is one steady_clock read pair per operator call.
  auto profile = std::make_unique<PlanProfile>();
  Executor executor(&catalog_, &runtimes_, stats.get(), pool_.get(),
                    options.max_concurrent_queries != 1, options.batch_size,
                    cancel, profile.get(), options.trace_sink,
                    std::move(cancel_ctx));
  Result<OperatorPtr> root = executor.Lower(*plan);
  if (!root.ok()) return root.status();
  // The tree is handed over UN-opened: the cursor opens it lazily at the
  // first Next. Open is where the materializing operators do their heavy
  // lifting — for a DEDUP plan, the resolution transaction (claim /
  // evaluate / publish / release) runs and completes inside that first
  // Next — so open-time failures, cancellation and deadline pre-emption
  // all surface through the cursor's one status channel, and a cursor
  // cancelled before its first Next never starts resolution at all.
  // Per-table ResolutionCoordinator claims still never outlive the tree's
  // Open, so an abandoned cursor leaves no claim behind.
  CursorPtr cursor(new QueryCursor(
      admission_.get(), prepared.involved_, pool_, std::move(cancel),
      std::move(stats), std::move(profile), options.trace_sink,
      root.MoveValueUnsafe(), std::move(plan_text), options.batch_size,
      executor.session_id(), options.default_query_deadline, opened_at));
  slot.Disarm();  // The cursor owns the slot now.
  return cursor;
}

Result<CursorPtr> QueryEngine::ExecuteStream(const std::string& sql) {
  QUERYER_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(sql));
  return prepared.Open();
}

namespace {

// The EXPLAIN presentation: one plan line per result row, PostgreSQL-style,
// shaped to the configured result layout so consumers keep one code path.
void FillPlanTextResult(QueryResult* result, const std::string& text,
                        ResultLayout layout) {
  result->columns = {"QUERY PLAN"};
  result->layout = layout;
  result->rows.clear();
  result->column_data.clear();
  if (layout == ResultLayout::kColumnMajor) {
    result->column_data.push_back(Split(text, '\n'));
    return;
  }
  for (std::string& line : Split(text, '\n')) {
    result->rows.push_back({std::move(line)});
  }
}

}  // namespace

Result<QueryResult> QueryEngine::Execute(const std::string& sql) {
  Stopwatch total;
  QUERYER_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(sql));

  if (prepared.explain() && !prepared.analyze()) {
    // Plain EXPLAIN: present the static plan, execute nothing (no
    // admission slot, no session, no ER work).
    QUERYER_ASSIGN_OR_RETURN(std::string text, StaticPlanText(prepared));
    QueryResult result;
    FillPlanTextResult(&result, text, options_.result_layout);
    result.plan_text = text;
    result.stats.total_seconds = total.ElapsedSeconds();
    return result;
  }

  QUERYER_ASSIGN_OR_RETURN(CursorPtr cursor, prepared.Open());

  QueryResult result;
  result.columns = cursor->columns();
  // From the cursor, not the PreparedQuery: the without-LI arm replans at
  // Open, and the result must report the plan that actually executed.
  result.plan_text = cursor->plan_text();

  // Materialize from the cursor. This is the late-materialization boundary:
  // reference batches (scan/DEDUP output) turn into owned strings only
  // here. Row-major answers take each row's values in one move (owned
  // batches move, reference batches materialize); column-major answers
  // append straight into per-column vectors — no per-row vector<string>
  // allocation at all. Each drained batch reserves ahead by its row count
  // (vector growth stays geometric — the larger of the two wins). EXPLAIN
  // ANALYZE takes the same drain loop — the full execution is the point —
  // but discards the answer.
  const bool analyze = prepared.analyze();
  const ResultLayout layout = options_.result_layout;
  result.layout = layout;
  if (layout == ResultLayout::kColumnMajor) {
    result.column_data.resize(result.columns.size());
  }
  RowBatch batch(cursor->batch_size());
  std::vector<EntityId> ref_ids;  // Scratch for the reference-batch gather.
  while (true) {
    QUERYER_ASSIGN_OR_RETURN(bool has, cursor->Next(&batch));
    if (!has) break;
    const std::size_t n = batch.size();
    if (n == 0 || analyze) continue;
    if (layout == ResultLayout::kColumnMajor) {
      for (std::size_t col = 0; col < result.column_data.size(); ++col) {
        std::vector<std::string>& out = result.column_data[col];
        if (out.capacity() - out.size() < n) {
          out.reserve(std::max(out.size() + n, 2 * out.capacity()));
        }
        for (std::size_t i = 0; i < n; ++i) {
          out.emplace_back(batch.value(i, col));
        }
      }
    } else if (batch.reference_mode()) {
      // Column-at-a-time gather: size the new rows once, then fill one
      // column across the whole batch — each column's dictionary (codes +
      // arena) stays cache-resident instead of being re-touched row by row.
      const Table& table = *batch.reference_table();
      const std::size_t width = table.num_attributes();
      const std::size_t base = result.rows.size();
      if (result.rows.capacity() - base < n) {
        result.rows.reserve(std::max(base + n, 2 * result.rows.capacity()));
      }
      result.rows.resize(base + n);
      for (std::size_t i = 0; i < n; ++i) {
        result.rows[base + i].resize(width);
      }
      ref_ids.clear();
      for (std::size_t i = 0; i < n; ++i) {
        ref_ids.push_back(batch.entity_id(i));
      }
      for (std::size_t col = 0; col < width; ++col) {
        const ColumnView cv = table.column(col);
        for (std::size_t i = 0; i < n; ++i) {
          const std::string_view v = cv.value(ref_ids[i]);
          result.rows[base + i][col].assign(v.data(), v.size());
        }
      }
    } else {
      if (result.rows.capacity() - result.rows.size() < n) {
        result.rows.reserve(
            std::max(result.rows.size() + n, 2 * result.rows.capacity()));
      }
      for (std::size_t i = 0; i < n; ++i) {
        result.rows.push_back(batch.TakeValues(i));
      }
    }
  }
  cursor->Close();
  if (analyze) {
    // After Close: the profile tree is final (Close times folded in).
    FillPlanTextResult(&result, cursor->AnnotatedPlan(), layout);
  }
  // Moved, not copied: collected_comparisons can be huge under
  // collect_comparisons, and the closed cursor is about to die.
  result.stats = std::move(*cursor->stats_);
  result.stats.total_seconds = total.ElapsedSeconds();
  return result;
}

Result<std::string> QueryEngine::Explain(const std::string& sql) {
  // Explain IS Prepare minus the handle: one parse+plan entry path (and,
  // like Prepare, no admission slot — a client inspecting a plan while
  // its own cursor holds the engine's only slot must not deadlock).
  QUERYER_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(sql));
  if (prepared.analyze()) {
    // EXPLAIN ANALYZE: execute the statement in full (this one DOES take
    // an admission slot for its duration), discard the answer, return the
    // plan annotated with the run's per-operator stats.
    QUERYER_ASSIGN_OR_RETURN(CursorPtr cursor, prepared.Open());
    RowBatch batch(cursor->batch_size());
    while (true) {
      QUERYER_ASSIGN_OR_RETURN(bool has, cursor->Next(&batch));
      if (!has) break;
    }
    cursor->Close();
    return cursor->AnnotatedPlan();
  }
  return StaticPlanText(prepared);
}

Result<std::string> QueryEngine::StaticPlanText(
    const PreparedQuery& prepared) {
  if (prepared.plan_ != nullptr) return prepared.plan_text();
  // The without-LI arm defers planning to Open (which resets the index
  // first). Explain must stay side-effect free AND still show a plan, so
  // it plans under the current index state — the plan this mode would
  // execute right now, exactly Explain's pre-streaming contract.
  Planner planner(&catalog_, &runtimes_, statistics_.get());
  QUERYER_ASSIGN_OR_RETURN(
      PlanPtr plan,
      planner.BuildPlan(prepared.statement_, PlannerModeFor(options_.mode)));
  return plan->ToString();
}

}  // namespace queryer
