#!/usr/bin/env python3
"""Checks that every relative link in the repo's Markdown files resolves.

Scans all *.md files (skipping build trees and hidden directories), extracts
inline links and images ([text](target), ![alt](target)), and verifies that
every non-external target exists on disk relative to the file containing it.
External schemes (http/https/mailto) and pure in-page anchors (#...) are
skipped; an anchor suffix on a relative link is stripped before the
existence check. Exits 1 listing every broken link.

Usage: python3 tools/check_md_links.py [repo_root]
"""

import os
import re
import sys

SKIP_DIRS = {".git", ".github", ".claude", "node_modules"}
SKIP_DIR_PREFIXES = ("build",)
# Inline link/image: [text](target) with an optional "title" after the
# target. Reference-style definitions are rare here and not used.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def iter_markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d
            for d in dirnames
            if d not in SKIP_DIRS and not d.startswith(SKIP_DIR_PREFIXES)
        ]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    broken = []
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    # Fenced code blocks routinely contain bracketed text that is not a
    # link; drop them before matching.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if EXTERNAL_RE.match(target) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path), relative)
        )
        if not os.path.exists(resolved):
            broken.append((os.path.relpath(path, root), target))
    return broken


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    broken = []
    checked = 0
    for path in iter_markdown_files(root):
        checked += 1
        broken.extend(check_file(path, root))
    if broken:
        print(f"{len(broken)} broken relative link(s):")
        for origin, target in broken:
            print(f"  {origin}: {target}")
        return 1
    print(f"OK: all relative links resolve across {checked} Markdown files.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
