// queryer_cli: interactive REPL client for a running queryer_server.
//
//   queryer_cli --port=7487 [--host=127.0.0.1] [--tenant=cli]
//
// Plain SQL lines run as a streaming cursor and print the first page;
// \next pages on. Commands:
//
//   SELECT ...          open a cursor, print the first page
//   \next [n]           fetch the next page of the open cursor
//   \cancel             cancel the open cursor (next \next reports it)
//   \close              close the open cursor
//   \exec SELECT ...    one-shot EXECUTE (exercises the result cache)
//   \page n             set the page size (default 20)
//   \metrics            server metrics (raw JSON)
//   \help, \q
//
// Exits non-zero when the connection drops. See docs/SERVER.md.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "server/client.h"

namespace {

void PrintRows(const std::vector<std::string>& columns,
               const std::vector<std::vector<std::string>>& rows) {
  if (!columns.empty()) {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      std::printf(i == 0 ? "%s" : " | %s", columns[i].c_str());
    }
    std::printf("\n");
  }
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::printf(i == 0 ? "%s" : " | %s", row[i].c_str());
    }
    std::printf("\n");
  }
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using queryer::Client;

  std::string host = "127.0.0.1";
  std::string tenant = "cli";
  int port = 7487;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--host", &value)) {
      host = value;
    } else if (ParseFlag(argv[i], "--port", &value)) {
      port = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--tenant", &value)) {
      tenant = value;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--host=ADDR] [--port=N] [--tenant=ID]\n",
                   argv[0]);
      return 2;
    }
  }

  auto connected = Client::Connect(host, static_cast<std::uint16_t>(port),
                                   tenant);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 connected.status().ToString().c_str());
    return 1;
  }
  Client client = std::move(connected).MoveValueUnsafe();
  std::fprintf(stderr, "connected to %s:%d as tenant \"%s\"; \\help for help\n",
               host.c_str(), port, tenant.c_str());

  std::size_t page_size = 20;
  bool cursor_open = false;
  std::uint64_t cursor = 0;
  std::vector<std::string> cursor_columns;

  auto fetch_page = [&](std::size_t n) {
    auto page = client.Next(cursor, n);
    if (!page.ok()) {
      std::fprintf(stderr, "error: %s\n", page.status().ToString().c_str());
      cursor_open = false;  // The server released the cursor with the error.
      return;
    }
    PrintRows(cursor_columns, page->rows);
    if (page->done) {
      std::printf("-- end of stream\n");
      cursor_open = false;
    } else {
      std::printf("-- more rows; \\next for the next %zu\n", n);
    }
  };

  char linebuf[1 << 16];
  for (;;) {
    std::fprintf(stderr, "queryer> ");
    std::fflush(stderr);
    if (std::fgets(linebuf, sizeof(linebuf), stdin) == nullptr) break;
    std::string line(linebuf);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    line = line.substr(start);

    if (line == "\\q" || line == "\\quit" || line == "exit") break;
    if (line == "\\help") {
      std::printf(
          "SELECT ...   open a cursor, print the first page\n"
          "\\next [n]    next page    \\cancel  cancel    \\close  close\n"
          "\\exec SQL    one-shot EXECUTE (result cache)\n"
          "\\page n      page size    \\metrics server metrics    \\q  quit\n");
      continue;
    }
    if (line == "\\metrics") {
      auto metrics = client.Metrics();
      if (!metrics.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     metrics.status().ToString().c_str());
        if (!client.connected()) return 1;
        continue;
      }
      std::printf("%s\n", metrics->c_str());
      continue;
    }
    if (line.rfind("\\page", 0) == 0) {
      std::size_t n = std::strtoull(line.c_str() + 5, nullptr, 10);
      if (n > 0) page_size = n;
      std::printf("page size %zu\n", page_size);
      continue;
    }
    if (line.rfind("\\next", 0) == 0) {
      if (!cursor_open) {
        std::fprintf(stderr, "no open cursor\n");
        continue;
      }
      std::size_t n = std::strtoull(line.c_str() + 5, nullptr, 10);
      fetch_page(n > 0 ? n : page_size);
      continue;
    }
    if (line == "\\cancel") {
      if (!cursor_open) {
        std::fprintf(stderr, "no open cursor\n");
        continue;
      }
      auto st = client.Cancel(cursor);
      std::printf("%s\n", st.ok() ? "cancelled (next \\next reports it)"
                                  : st.ToString().c_str());
      continue;
    }
    if (line == "\\close") {
      if (!cursor_open) {
        std::fprintf(stderr, "no open cursor\n");
        continue;
      }
      auto st = client.Close(cursor);
      cursor_open = false;
      std::printf("%s\n", st.ok() ? "closed" : st.ToString().c_str());
      continue;
    }
    if (line.rfind("\\exec ", 0) == 0) {
      auto result = client.Execute(line.substr(6));
      if (!result.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     result.status().ToString().c_str());
        if (!client.connected()) return 1;
        continue;
      }
      PrintRows(result->columns, result->rows);
      std::printf("-- %zu rows (%s, %llu comparisons)\n", result->rows.size(),
                  result->cached ? "result cache" : "executed",
                  static_cast<unsigned long long>(
                      result->comparisons_executed));
      continue;
    }
    if (line[0] == '\\') {
      std::fprintf(stderr, "unknown command %s; \\help for help\n",
                   line.c_str());
      continue;
    }

    // Plain SQL: stream it.
    if (cursor_open) {
      (void)client.Close(cursor);
      cursor_open = false;
    }
    auto open = client.Open(line);
    if (!open.ok()) {
      std::fprintf(stderr, "error: %s\n", open.status().ToString().c_str());
      if (!client.connected()) return 1;
      continue;
    }
    cursor = open->cursor;
    cursor_columns = open->columns;
    cursor_open = true;
    fetch_page(page_size);
  }
  return 0;
}
