// queryer_server: stand-alone QueryServer daemon.
//
// Serves either CSV tables (--csv name=path, repeatable) or — with no
// --csv — the generated scholarly sample set (dsd/oagp/oagv, sizes via
// --dsd/--oagp/--oagv) so the server is demo-able without any data files.
// Prints one "listening on <host>:<port>" line to stdout once ready
// (scripts wait for it), then serves until SIGINT/SIGTERM.
//
//   queryer_server --port=7487
//   queryer_server --csv papers=papers.csv --csv venues=venues.csv \
//       --max-concurrent=8 --tenant-quota=2
//
// See docs/SERVER.md for the protocol and tools/queryer_cli.cc for the
// matching interactive client.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "datagen/scholarly.h"
#include "engine/query_engine.h"
#include "server/query_server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --host=ADDR            listen address (default 127.0.0.1)\n"
      "  --port=N               listen port (default 7487; 0 = ephemeral)\n"
      "  --csv NAME=PATH        register a CSV file as table NAME"
      " (repeatable;\n"
      "                         omits the generated sample tables)\n"
      "  --dsd=N --oagp=N --oagv=N   sample table sizes"
      " (default 2600/3000/800)\n"
      "  --mode=batch|naive|advanced  execution mode (default advanced)\n"
      "  --threads=N            engine worker threads (default 1)\n"
      "  --max-concurrent=N     engine admission slots (default 4)\n"
      "  --admission-timeout=S  shed after S seconds waiting (default 30)\n"
      "  --tenant-quota=N       sessions per tenant, 0=unlimited"
      " (default 0)\n"
      "  --max-connections=N    connection cap (default 256)\n"
      "  --idle-timeout=S       close idle connections after S seconds\n",
      argv0);
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using queryer::EngineOptions;
  using queryer::ExecutionMode;
  using queryer::QueryEngine;
  using queryer::QueryServer;
  using queryer::ServerOptions;
  using queryer::Status;

  EngineOptions engine_options;
  engine_options.max_concurrent_queries = 4;
  engine_options.admission_timeout = 30;
  ServerOptions server_options;
  server_options.port = 7487;
  std::vector<std::pair<std::string, std::string>> csvs;
  std::size_t dsd_rows = 2600, oagp_rows = 3000, oagv_rows = 800;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--host", &value)) {
      server_options.host = value;
    } else if (ParseFlag(argv[i], "--port", &value)) {
      server_options.port = static_cast<std::uint16_t>(std::atoi(value.c_str()));
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      value = argv[++i];
      std::size_t eq = value.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "--csv wants NAME=PATH, got %s\n", value.c_str());
        return 2;
      }
      csvs.emplace_back(value.substr(0, eq), value.substr(eq + 1));
    } else if (ParseFlag(argv[i], "--csv", &value)) {
      std::size_t eq = value.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "--csv wants NAME=PATH, got %s\n", value.c_str());
        return 2;
      }
      csvs.emplace_back(value.substr(0, eq), value.substr(eq + 1));
    } else if (ParseFlag(argv[i], "--dsd", &value)) {
      dsd_rows = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--oagp", &value)) {
      oagp_rows = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--oagv", &value)) {
      oagv_rows = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--mode", &value)) {
      if (value == "batch") {
        engine_options.mode = ExecutionMode::kBatch;
      } else if (value == "naive") {
        engine_options.mode = ExecutionMode::kNaive;
      } else if (value == "advanced") {
        engine_options.mode = ExecutionMode::kAdvanced;
      } else {
        std::fprintf(stderr, "unknown --mode=%s\n", value.c_str());
        return 2;
      }
    } else if (ParseFlag(argv[i], "--threads", &value)) {
      engine_options.num_threads = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--max-concurrent", &value)) {
      engine_options.max_concurrent_queries =
          std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--admission-timeout", &value)) {
      engine_options.admission_timeout = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--tenant-quota", &value)) {
      engine_options.max_concurrent_per_tenant =
          std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--max-connections", &value)) {
      server_options.max_connections =
          std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--idle-timeout", &value)) {
      server_options.idle_timeout = std::atof(value.c_str());
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  QueryEngine engine(engine_options);
  if (!csvs.empty()) {
    for (const auto& [name, path] : csvs) {
      Status st = engine.RegisterCsvFile(path, name);
      if (!st.ok()) {
        std::fprintf(stderr, "register %s: %s\n", name.c_str(),
                     st.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "registered table %s from %s\n", name.c_str(),
                   path.c_str());
    }
  } else {
    std::fprintf(stderr,
                 "no --csv given; generating sample tables "
                 "dsd(%zu) oagp(%zu) oagv(%zu)\n",
                 dsd_rows, oagp_rows, oagv_rows);
    auto universe = queryer::datagen::MakeVenueUniverse(300, 7);
    queryer::datagen::OagpOptions oagp_options;
    oagp_options.venue_join_fraction = 0.5;
    for (auto& table :
         {queryer::datagen::MakeDsdLike(dsd_rows, 4242).table,
          queryer::datagen::MakeOagpLike(oagp_rows, universe, 11, oagp_options)
              .table,
          queryer::datagen::MakeOagvLike(oagv_rows, universe, 13).table}) {
      Status st = engine.RegisterTable(table);
      if (!st.ok()) {
        std::fprintf(stderr, "register: %s\n", st.ToString().c_str());
        return 1;
      }
    }
  }

  QueryServer server(&engine, server_options);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%u\n", server_options.host.c_str(),
              server.port());
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "shutting down\n");
  server.Stop();
  return 0;
}
