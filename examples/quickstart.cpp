// Quickstart: the paper's motivating example (Sec. 2), end to end.
//
// Loads the publications table P and venues table V of Tables 1-2, runs the
// plain SQL query (which misses the duplicates) and then the same query with
// the DEDUP keyword, printing the paper's Table 3 result.
//
//   ./quickstart

#include <cstdio>
#include <string>
#include <string_view>

#include "datagen/scholarly.h"
#include "engine/query_engine.h"

namespace {

void PrintResult(const queryer::QueryResult& result) {
  for (const std::string& column : result.columns) {
    std::printf("%-62s", column.c_str());
  }
  std::printf("\n");
  // ValueAt/num_rows work for either result layout (row- or column-major).
  for (std::size_t r = 0; r < result.num_rows(); ++r) {
    for (std::size_t c = 0; c < result.columns.size(); ++c) {
      const std::string_view value = result.ValueAt(r, c);
      std::printf("%-62.*s", static_cast<int>(value.empty() ? 6 : value.size()),
                  value.empty() ? "(null)" : value.data());
    }
    std::printf("\n");
  }
  std::printf("(%zu rows, %zu comparisons executed)\n\n", result.num_rows(),
              result.stats.comparisons_executed);
}

}  // namespace

int main() {
  queryer::EngineOptions options;
  // The 14-row example is too small for Edge Pruning statistics; BP+BF is
  // the right configuration at this scale.
  options.meta_blocking = queryer::MetaBlockingConfig::BpBf();
  queryer::QueryEngine engine(options);

  // Register the dirty tables. In a real deployment these would come from
  // engine.RegisterCsvFile("publications.csv", "p").
  auto status = engine.RegisterTable(
      queryer::datagen::MakeMotivatingPublications().table);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  status = engine.RegisterTable(queryer::datagen::MakeMotivatingVenues().table);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("== Plain SQL (misses P2, P7 and V4's rank) ==\n");
  auto plain = engine.Execute(
      "SELECT P.Title, P.Year, V.Rank FROM P "
      "INNER JOIN V ON P.venue = V.title WHERE P.venue = 'EDBT'");
  if (!plain.ok()) {
    std::fprintf(stderr, "%s\n", plain.status().ToString().c_str());
    return 1;
  }
  PrintResult(*plain);

  std::printf("== SELECT DEDUP (the paper's Table 3) ==\n");
  auto dedup = engine.Execute(
      "SELECT DEDUP P.Title, P.Year, V.Rank FROM P "
      "INNER JOIN V ON P.venue = V.title WHERE P.venue = 'EDBT'");
  if (!dedup.ok()) {
    std::fprintf(stderr, "%s\n", dedup.status().ToString().c_str());
    return 1;
  }
  PrintResult(*dedup);

  std::printf("== Plan chosen by the cost-based planner ==\n%s\n",
              dedup->plan_text.c_str());

  // Prepare once, run many times: the statement is parsed and planned a
  // single time (the plan is inspectable without executing), and every
  // Open() is a fresh streaming session over the captured plan. The second
  // run is served from the Link Index — zero comparisons.
  std::printf("== Prepare + re-execute (streaming cursor) ==\n");
  auto prepared = engine.Prepare(
      "SELECT DEDUP P.Title, V.Rank FROM P "
      "INNER JOIN V ON P.venue = V.title WHERE P.venue = 'EDBT'");
  if (!prepared.ok()) {
    std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
    return 1;
  }
  for (int run = 1; run <= 2; ++run) {
    auto cursor = prepared->Open();
    if (!cursor.ok()) {
      std::fprintf(stderr, "%s\n", cursor.status().ToString().c_str());
      return 1;
    }
    std::size_t rows = 0;
    queryer::RowBatch batch((*cursor)->batch_size());
    while (true) {
      auto has = (*cursor)->Next(&batch);
      if (!has.ok()) {
        std::fprintf(stderr, "%s\n", has.status().ToString().c_str());
        return 1;
      }
      if (!*has) break;
      rows += batch.size();
    }
    std::printf("run %d: %zu rows, %zu comparisons executed, %zu entities "
                "served from the Link Index\n",
                run, rows, (*cursor)->stats().comparisons_executed,
                (*cursor)->stats().entities_already_resolved);
  }
  return 0;
}
