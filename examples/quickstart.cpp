// Quickstart: the paper's motivating example (Sec. 2), end to end.
//
// Loads the publications table P and venues table V of Tables 1-2, runs the
// plain SQL query (which misses the duplicates) and then the same query with
// the DEDUP keyword, printing the paper's Table 3 result.
//
//   ./quickstart

#include <cstdio>
#include <string>

#include "datagen/scholarly.h"
#include "engine/query_engine.h"

namespace {

void PrintResult(const queryer::QueryResult& result) {
  for (const std::string& column : result.columns) {
    std::printf("%-62s", column.c_str());
  }
  std::printf("\n");
  for (const auto& row : result.rows) {
    for (const std::string& value : row) {
      std::printf("%-62s", value.empty() ? "(null)" : value.c_str());
    }
    std::printf("\n");
  }
  std::printf("(%zu rows, %zu comparisons executed)\n\n", result.rows.size(),
              result.stats.comparisons_executed);
}

}  // namespace

int main() {
  queryer::EngineOptions options;
  // The 14-row example is too small for Edge Pruning statistics; BP+BF is
  // the right configuration at this scale.
  options.meta_blocking = queryer::MetaBlockingConfig::BpBf();
  queryer::QueryEngine engine(options);

  // Register the dirty tables. In a real deployment these would come from
  // engine.RegisterCsvFile("publications.csv", "p").
  auto status = engine.RegisterTable(
      queryer::datagen::MakeMotivatingPublications().table);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  status = engine.RegisterTable(queryer::datagen::MakeMotivatingVenues().table);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("== Plain SQL (misses P2, P7 and V4's rank) ==\n");
  auto plain = engine.Execute(
      "SELECT P.Title, P.Year, V.Rank FROM P "
      "INNER JOIN V ON P.venue = V.title WHERE P.venue = 'EDBT'");
  if (!plain.ok()) {
    std::fprintf(stderr, "%s\n", plain.status().ToString().c_str());
    return 1;
  }
  PrintResult(*plain);

  std::printf("== SELECT DEDUP (the paper's Table 3) ==\n");
  auto dedup = engine.Execute(
      "SELECT DEDUP P.Title, P.Year, V.Rank FROM P "
      "INNER JOIN V ON P.venue = V.title WHERE P.venue = 'EDBT'");
  if (!dedup.ok()) {
    std::fprintf(stderr, "%s\n", dedup.status().ToString().c_str());
    return 1;
  }
  PrintResult(*dedup);

  std::printf("== Plan chosen by the cost-based planner ==\n%s\n",
              dedup->plan_text.c_str());
  return 0;
}
