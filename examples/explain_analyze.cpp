// EXPLAIN ANALYZE walkthrough: the observability layer end to end.
//
// Runs three statement shapes — a filtered scan, an equi-join, and a DEDUP
// query — through `EXPLAIN ANALYZE`, printing each executed plan annotated
// with per-operator cardinalities and self-times plus the ER-stage
// breakdown. Then dumps the process-wide metrics registry in both JSON and
// Prometheus text form, and (optionally) writes a Chrome trace of the whole
// run. CI uses this binary as its observability smoke test.
//
//   ./explain_analyze [trace-out.json]

#include <cstdio>
#include <string>

#include "datagen/scholarly.h"
#include "engine/query_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"

int main(int argc, char** argv) {
  queryer::EngineOptions options;
  options.num_threads = 2;
  if (argc > 1) {
    // Record every session of this run into one trace document.
    options.trace_sink = std::make_shared<queryer::TraceSink>(argv[1]);
  }
  queryer::QueryEngine engine(options);

  auto universe = queryer::datagen::MakeVenueUniverse(300, 7);
  auto dsd = queryer::datagen::MakeDsdLike(2600, 4242);
  auto oagp = queryer::datagen::MakeOagpLike(3000, universe, 11);
  auto oagv = queryer::datagen::MakeOagvLike(800, universe, 13);
  for (const auto& table : {dsd.table, oagp.table, oagv.table}) {
    auto status = engine.RegisterTable(table);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  const std::string statements[] = {
      "EXPLAIN ANALYZE SELECT id, title FROM dsd WHERE MOD(id, 100) < 23",
      "EXPLAIN ANALYZE SELECT * FROM oagp "
      "INNER JOIN oagv ON oagp.venue = oagv.title",
      "EXPLAIN ANALYZE SELECT DEDUP title, venue FROM dsd "
      "WHERE MOD(id, 100) < 10",
  };
  for (const std::string& sql : statements) {
    std::printf("=== %s\n", sql.c_str());
    auto result = engine.Execute(sql);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    for (std::size_t r = 0; r < result->num_rows(); ++r) {
      const std::string_view line = result->ValueAt(r, 0);
      std::printf("%.*s\n", static_cast<int>(line.size()), line.data());
    }
    std::printf("\n");
  }

  std::printf("=== metrics (JSON)\n%s\n\n",
              queryer::MetricsRegistry::Global().ExportJson().c_str());
  std::printf("=== metrics (Prometheus)\n%s\n",
              queryer::MetricsRegistry::Global().ExportPrometheus().c_str());
  return 0;
}
