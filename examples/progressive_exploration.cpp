// Progressive exploration (the paper's Fig. 11 usage pattern), on the
// streaming cursor API: an analyst issues overlapping queries against the
// same dirty table and watches batches arrive as soon as the relevant
// entities are resolved. The Link Index makes every successive query
// cheaper because already-resolved entities skip the ER pipeline entirely
// — visible here as a shrinking time-to-first-batch.
//
//   ./progressive_exploration [num_rows]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "datagen/scholarly.h"
#include "engine/query_engine.h"

int main(int argc, char** argv) {
  std::size_t num_rows = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 30000;
  std::printf("Generating a DSD-like bibliography with %zu rows...\n", num_rows);
  auto dsd = queryer::datagen::MakeDsdLike(num_rows, 42);

  // Overlapping range queries: each extends the previous year window.
  const std::string queries[] = {
      "SELECT DEDUP title, year FROM dsd WHERE year BETWEEN 2012 AND 2015",
      "SELECT DEDUP title, year FROM dsd WHERE year BETWEEN 2010 AND 2017",
      "SELECT DEDUP title, year FROM dsd WHERE year BETWEEN 2008 AND 2019",
      "SELECT DEDUP title, year FROM dsd WHERE year BETWEEN 2006 AND 2021",
  };

  for (bool use_link_index : {true, false}) {
    queryer::QueryEngine engine;
    if (!engine.RegisterTable(dsd.table).ok()) return 1;
    engine.set_use_link_index(use_link_index);
    std::printf("\n== %s the Link Index ==\n",
                use_link_index ? "With" : "Without");
    std::printf("%-10s %10s %8s %12s %12s %12s %10s %10s\n", "query", "rows",
                "batches", "|QE|", "from-LI", "comparisons", "first(s)",
                "total(s)");
    int i = 0;
    for (const std::string& sql : queries) {
      // Open a streaming session and consume batches as they arrive. The
      // clock starts before Open: a DEDUP plan resolves its entities
      // there, so that is the cost the Link Index amortizes away.
      queryer::Stopwatch drain;
      auto cursor = engine.ExecuteStream(sql);
      if (!cursor.ok()) {
        std::fprintf(stderr, "%s\n", cursor.status().ToString().c_str());
        return 1;
      }
      double first_batch_seconds = -1;
      std::size_t rows = 0, batches = 0;
      queryer::RowBatch batch((*cursor)->batch_size());
      while (true) {
        auto has = (*cursor)->Next(&batch);
        if (!has.ok()) {
          std::fprintf(stderr, "%s\n", has.status().ToString().c_str());
          return 1;
        }
        if (!*has) break;
        if (batch.empty()) continue;
        if (first_batch_seconds < 0) {
          first_batch_seconds = drain.ElapsedSeconds();
        }
        rows += batch.size();
        ++batches;
      }
      // A query that selects nothing never yields a non-empty batch; its
      // first answer IS the end of the stream.
      if (first_batch_seconds < 0) first_batch_seconds = drain.ElapsedSeconds();
      const queryer::ExecStats& stats = (*cursor)->stats();
      std::printf("%-10s %10zu %8zu %12zu %12zu %12zu %10s %10s\n",
                  ("Q" + std::to_string(++i)).c_str(), rows, batches,
                  stats.query_entities, stats.entities_already_resolved,
                  stats.comparisons_executed,
                  queryer::FormatDouble(first_batch_seconds, 3).c_str(),
                  queryer::FormatDouble(stats.total_seconds, 3).c_str());
    }
  }
  std::printf(
      "\nWith the LI, each query only pays for entities not covered by the "
      "previous ones — the progressive-cleaning behaviour of the paper's "
      "Fig. 11, and the first batch of every later query streams out almost "
      "immediately.\n");
  return 0;
}
