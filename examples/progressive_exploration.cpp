// Progressive exploration (the paper's Fig. 11 usage pattern): an analyst
// issues overlapping queries against the same dirty table; the Link Index
// makes every successive query cheaper because already-resolved entities
// skip the ER pipeline entirely.
//
//   ./progressive_exploration [num_rows]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/string_util.h"
#include "datagen/scholarly.h"
#include "engine/query_engine.h"

int main(int argc, char** argv) {
  std::size_t num_rows = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 30000;
  std::printf("Generating a DSD-like bibliography with %zu rows...\n", num_rows);
  auto dsd = queryer::datagen::MakeDsdLike(num_rows, 42);

  // Overlapping range queries: each extends the previous year window.
  const std::string queries[] = {
      "SELECT DEDUP title, year FROM dsd WHERE year BETWEEN 2012 AND 2015",
      "SELECT DEDUP title, year FROM dsd WHERE year BETWEEN 2010 AND 2017",
      "SELECT DEDUP title, year FROM dsd WHERE year BETWEEN 2008 AND 2019",
      "SELECT DEDUP title, year FROM dsd WHERE year BETWEEN 2006 AND 2021",
  };

  for (bool use_link_index : {true, false}) {
    queryer::QueryEngine engine;
    if (!engine.RegisterTable(dsd.table).ok()) return 1;
    engine.set_use_link_index(use_link_index);
    std::printf("\n== %s the Link Index ==\n",
                use_link_index ? "With" : "Without");
    std::printf("%-10s %12s %12s %12s %10s\n", "query", "|QE|",
                "from-LI", "comparisons", "time(s)");
    int i = 0;
    for (const std::string& sql : queries) {
      auto result = engine.Execute(sql);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      std::printf("%-10s %12zu %12zu %12zu %10s\n",
                  ("Q" + std::to_string(++i)).c_str(),
                  result->stats.query_entities,
                  result->stats.entities_already_resolved,
                  result->stats.comparisons_executed,
                  queryer::FormatDouble(result->stats.total_seconds, 3).c_str());
    }
  }
  std::printf(
      "\nWith the LI, each query only pays for entities not covered by the "
      "previous ones — the progressive-cleaning behaviour of the paper's "
      "Fig. 11.\n");
  return 0;
}
