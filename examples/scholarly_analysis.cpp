// Scholarly-aggregator analysis (the paper's motivating application): an
// analyst explores freshly harvested, un-deduplicated publication and venue
// feeds with SPJ queries, comparing the Batch Approach with QueryER's
// analysis-aware execution.
//
//   ./scholarly_analysis [num_papers] [num_venues]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/string_util.h"
#include "datagen/scholarly.h"
#include "engine/query_engine.h"

namespace {

queryer::Result<queryer::QueryResult> RunOrDie(queryer::QueryEngine* engine,
                                               const std::string& sql) {
  auto result = engine->Execute(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n  %s\n", sql.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t num_papers = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  std::size_t num_venues = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2000;

  std::printf("Generating OAG-like feeds: %zu papers, %zu venues...\n",
              num_papers, num_venues);
  auto universe = queryer::datagen::MakeVenueUniverse(400, 7);
  auto papers = queryer::datagen::MakeOagpLike(num_papers, universe, 11);
  auto venues = queryer::datagen::MakeOagvLike(num_venues, universe, 13);

  const std::string spj =
      "SELECT DEDUP oagp.title, oagp.year, oagv.rank "
      "FROM oagp INNER JOIN oagv ON oagp.venue = oagv.title "
      "WHERE oagp.venue = 'EDBT'";
  const std::string sp =
      "SELECT DEDUP title, n_citation FROM oagp WHERE year >= 2015 AND "
      "doc_type = 'conference' AND title LIKE '%entity%'";

  for (queryer::ExecutionMode mode :
       {queryer::ExecutionMode::kBatch, queryer::ExecutionMode::kAdvanced}) {
    queryer::QueryEngine engine;
    if (!engine.RegisterTable(papers.table).ok() ||
        !engine.RegisterTable(venues.table).ok()) {
      std::fprintf(stderr, "table registration failed\n");
      return 1;
    }
    engine.set_mode(mode);
    std::printf("\n== %s ==\n",
                std::string(queryer::ExecutionModeToString(mode)).c_str());

    auto spj_result = RunOrDie(&engine, spj);
    std::printf(
        "SPJ venue-rank query: %zu grouped rows, %zu comparisons, %ss\n",
        spj_result->rows.size(), spj_result->stats.comparisons_executed,
        queryer::FormatDouble(spj_result->stats.total_seconds, 3).c_str());

    auto sp_result = RunOrDie(&engine, sp);
    std::printf(
        "SP recent-entity query: %zu grouped rows, %zu comparisons, %ss\n",
        sp_result->rows.size(), sp_result->stats.comparisons_executed,
        queryer::FormatDouble(sp_result->stats.total_seconds, 3).c_str());

    std::printf("Sample grouped rows:\n");
    std::size_t shown = 0;
    for (const auto& row : spj_result->rows) {
      if (shown++ >= 3) break;
      std::printf("  %s | year=%s | rank=%s\n", row[0].c_str(), row[1].c_str(),
                  row[2].c_str());
    }
  }
  std::printf(
      "\nBoth modes return the same grouped entities; the analysis-aware "
      "mode resolves only what the query touches.\n");
  return 0;
}
