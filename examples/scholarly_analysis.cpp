// Scholarly-aggregator analysis (the paper's motivating application): an
// analyst explores freshly harvested, un-deduplicated publication and venue
// feeds with SPJ queries, comparing the Batch Approach with QueryER's
// analysis-aware execution.
//
//   ./scholarly_analysis [num_papers] [num_venues]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/string_util.h"
#include "datagen/scholarly.h"
#include "engine/query_engine.h"

namespace {

queryer::Result<queryer::QueryResult> RunOrDie(queryer::QueryEngine* engine,
                                               const std::string& sql) {
  auto result = engine->Execute(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n  %s\n", sql.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t num_papers = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  std::size_t num_venues = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2000;

  std::printf("Generating OAG-like feeds: %zu papers, %zu venues...\n",
              num_papers, num_venues);
  auto universe = queryer::datagen::MakeVenueUniverse(400, 7);
  auto papers = queryer::datagen::MakeOagpLike(num_papers, universe, 11);
  auto venues = queryer::datagen::MakeOagvLike(num_venues, universe, 13);

  const std::string spj =
      "SELECT DEDUP oagp.title, oagp.year, oagv.rank "
      "FROM oagp INNER JOIN oagv ON oagp.venue = oagv.title "
      "WHERE oagp.venue = 'EDBT'";
  const std::string sp =
      "SELECT DEDUP title, n_citation FROM oagp WHERE year >= 2015 AND "
      "doc_type = 'conference' AND title LIKE '%entity%'";

  for (queryer::ExecutionMode mode :
       {queryer::ExecutionMode::kBatch, queryer::ExecutionMode::kAdvanced}) {
    // Analysis workloads read answers a column at a time, so ask the engine
    // for column-major results; ColumnIndex/ValueAt below don't care which
    // layout the engine produced.
    queryer::EngineOptions options;
    options.result_layout = queryer::ResultLayout::kColumnMajor;
    queryer::QueryEngine engine(options);
    if (!engine.RegisterTable(papers.table).ok() ||
        !engine.RegisterTable(venues.table).ok()) {
      std::fprintf(stderr, "table registration failed\n");
      return 1;
    }
    engine.set_mode(mode);
    std::printf("\n== %s ==\n",
                std::string(queryer::ExecutionModeToString(mode)).c_str());

    auto spj_result = RunOrDie(&engine, spj);
    std::printf(
        "SPJ venue-rank query: %zu grouped rows, %zu comparisons, %ss\n",
        spj_result->num_rows(), spj_result->stats.comparisons_executed,
        queryer::FormatDouble(spj_result->stats.total_seconds, 3).c_str());

    auto sp_result = RunOrDie(&engine, sp);
    std::printf(
        "SP recent-entity query: %zu grouped rows, %zu comparisons, %ss\n",
        sp_result->num_rows(), sp_result->stats.comparisons_executed,
        queryer::FormatDouble(sp_result->stats.total_seconds, 3).c_str());

    std::printf("Sample grouped rows:\n");
    const std::size_t title = spj_result->ColumnIndex("oagp.title").value_or(0);
    const std::size_t year = spj_result->ColumnIndex("oagp.year").value_or(1);
    const std::size_t rank = spj_result->ColumnIndex("oagv.rank").value_or(2);
    for (std::size_t r = 0; r < spj_result->num_rows() && r < 3; ++r) {
      std::printf("  %s | year=%s | rank=%s\n",
                  std::string(spj_result->ValueAt(r, title)).c_str(),
                  std::string(spj_result->ValueAt(r, year)).c_str(),
                  std::string(spj_result->ValueAt(r, rank)).c_str());
    }
  }
  std::printf(
      "\nBoth modes return the same grouped entities; the analysis-aware "
      "mode resolves only what the query touches.\n");
  return 0;
}
