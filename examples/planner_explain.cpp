// Planner walkthrough: shows the plans each execution mode produces for the
// same Dedupe Query and the comparison estimates behind the Advanced ER
// Solution's Dirty-Left / Dirty-Right decision (paper Sec. 7).
//
//   ./planner_explain

#include <cstdio>
#include <string>

#include "common/string_util.h"
#include "datagen/orgs.h"
#include "datagen/people.h"
#include "engine/query_engine.h"
#include "planner/planner.h"

int main() {
  auto oao = queryer::datagen::MakeOrganisations(3000, 21);
  auto pool = queryer::datagen::OrganisationNamePool(oao);
  auto ppl = queryer::datagen::MakePeople(12000, pool, 23);

  queryer::QueryEngine engine;
  if (!engine.RegisterTable(ppl.table).ok() ||
      !engine.RegisterTable(oao.table).ok()) {
    return 1;
  }

  const std::string sql =
      "SELECT DEDUP ppl.surname, oao.name FROM ppl "
      "INNER JOIN oao ON ppl.org = oao.name WHERE MOD(ppl.id, 25) < 1";

  for (queryer::ExecutionMode mode :
       {queryer::ExecutionMode::kNaive, queryer::ExecutionMode::kNaive2,
        queryer::ExecutionMode::kAdvanced}) {
    engine.set_mode(mode);
    auto plan = engine.Explain(sql);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
      return 1;
    }
    std::printf("== %s ==\n%s\n",
                std::string(queryer::ExecutionModeToString(mode)).c_str(),
                plan->c_str());
  }

  // The estimates the AES decision is based on.
  auto stmt = queryer::ParseSelect(sql);
  auto ppl_runtime = engine.GetRuntime("ppl");
  auto oao_runtime = engine.GetRuntime("oao");
  if (stmt.ok() && ppl_runtime.ok() && oao_runtime.ok()) {
    queryer::StatisticsCache& stats = engine.statistics();
    std::printf("== Planner statistics ==\n");
    std::printf("duplication factor ppl: %s\n",
                queryer::FormatDouble(
                    stats.DuplicationFactor(ppl_runtime->get()), 3)
                    .c_str());
    std::printf("duplication factor oao: %s\n",
                queryer::FormatDouble(
                    stats.DuplicationFactor(oao_runtime->get()), 3)
                    .c_str());
    std::printf("join fraction ppl.org -> oao.name: %s\n",
                queryer::FormatDouble(
                    stats.JoinFraction(ppl_runtime->get(), "org",
                                       oao_runtime->get(), "name"),
                    3)
                    .c_str());
  }

  engine.set_mode(queryer::ExecutionMode::kAdvanced);
  auto result = engine.Execute(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nAES executed the query in %ss with %zu comparisons "
              "(%zu grouped rows).\n",
              queryer::FormatDouble(result->stats.total_seconds, 3).c_str(),
              result->stats.comparisons_executed, result->num_rows());
  return 0;
}
